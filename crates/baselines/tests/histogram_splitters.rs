//! Histogram-based splitter selection: quality on uniform data, agreement
//! across ranks, and the duplicate-blindness that dooms it on skew.

use baselines::{histogram_splitters, HistogramConfig};
use mpisim::{NetModel, World};
use sdssort::search::upper_bound;
use workloads::uniform_u64;

fn world(p: usize) -> World {
    World::new(p).cores_per_node(4).net(NetModel::zero())
}

#[test]
fn splitters_agree_across_ranks() {
    let p = 8;
    let report = world(p).run(|comm| {
        let mut data = uniform_u64(2000, 1, comm.rank());
        data.sort_unstable();
        histogram_splitters(comm, &data, p, &HistogramConfig::default(), 7)
    });
    let first = &report.results[0];
    assert_eq!(first.len(), p - 1);
    for r in &report.results {
        assert_eq!(r, first);
    }
    assert!(first.windows(2).all(|w| w[0] <= w[1]), "splitters sorted");
}

#[test]
fn splitters_balance_uniform_data() {
    let p = 8;
    let n_rank = 4000;
    let report = world(p).run(|comm| {
        let mut data = uniform_u64(n_rank, 3, comm.rank());
        data.sort_unstable();
        let splitters = histogram_splitters(comm, &data, p, &HistogramConfig::default(), 3);
        // local bucket sizes under these splitters
        let mut cuts = vec![0usize];
        for &s in &splitters {
            cuts.push(upper_bound(&data, s));
        }
        cuts.push(data.len());
        let buckets: Vec<usize> = cuts.windows(2).map(|w| w[1] - w[0]).collect();
        comm.allreduce(buckets, |a, b| {
            a.iter().zip(&b).map(|(x, y)| x + y).collect()
        })
    });
    let global_buckets = &report.results[0];
    let total: usize = global_buckets.iter().sum();
    assert_eq!(total, p * n_rank);
    let ideal = total / p;
    for (i, &b) in global_buckets.iter().enumerate() {
        assert!(
            b < ideal * 2,
            "bucket {i} holds {b} (> 2x ideal {ideal}): histogram refinement failed on uniform data"
        );
    }
}

#[test]
fn duplicates_defeat_histogram_splitting() {
    // 90% of all records share one key: whatever splitters histogramming
    // picks, upper_bound bucketing must put that key's whole mass in one
    // bucket — the structural failure SDS-Sort fixes.
    let p = 8;
    let n_rank = 2000;
    let report = world(p).run(|comm| {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(comm.rank() as u64);
        let mut data: Vec<u64> = (0..n_rank)
            .map(|_| {
                if rng.gen_bool(0.9) {
                    500
                } else {
                    rng.gen_range(0..1000)
                }
            })
            .collect();
        data.sort_unstable();
        let splitters = histogram_splitters(comm, &data, p, &HistogramConfig::default(), 11);
        let mut cuts = vec![0usize];
        for &s in &splitters {
            cuts.push(upper_bound(&data, s));
        }
        cuts.push(data.len());
        let buckets: Vec<usize> = cuts.windows(2).map(|w| w[1] - w[0]).collect();
        comm.allreduce(buckets, |a, b| {
            a.iter().zip(&b).map(|(x, y)| x + y).collect()
        })
    });
    let buckets = &report.results[0];
    let total: usize = buckets.iter().sum();
    let max = *buckets.iter().max().expect("non-empty");
    assert!(
        max as f64 >= total as f64 * 0.85,
        "one bucket must swallow the duplicate mass: {buckets:?}"
    );
}

#[test]
fn empty_world_data_handled() {
    let p = 4;
    let report = world(p).run(|comm| {
        let data: Vec<u64> = Vec::new();
        histogram_splitters(comm, &data, p, &HistogramConfig::default(), 1)
    });
    for r in &report.results {
        assert!(r.is_empty(), "no data → no splitters");
    }
}

#[test]
fn single_bucket_needs_no_splitters() {
    let report = world(4).run(|comm| {
        let data = vec![1u64, 2, 3];
        histogram_splitters(comm, &data, 1, &HistogramConfig::default(), 1)
    });
    for r in &report.results {
        assert!(r.is_empty());
    }
}
