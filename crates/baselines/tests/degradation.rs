//! Fig. 8's qualitative result under the fault layer's memory-pressure
//! ramp: HykSort (which must hold its full receive volume in memory) still
//! crashes with OOM, while the resilient SDS-Sort driver degrades to disk
//! spilling and completes correctly.

use baselines::{hyksort, HykSortConfig};
use mpisim::{FaultSpec, NetModel, World};
use sdssort::{
    is_globally_sorted, sds_sort_resilient, ComputeModel, ResilienceConfig, SdsConfig, SortError,
};

const P: usize = 6;
const N: usize = 300;

fn input(rank: usize) -> Vec<u64> {
    workloads::zipf::zipf_keys(N, 1.1, 23, rank)
}

// ~1.25× the balanced receive volume; the ramp withholds half of it.
const BUDGET: usize = 5 * N * 8 / 4;

fn ramp() -> FaultSpec {
    FaultSpec::parse("ramp=0:0:0.5").expect("spec")
}

#[test]
fn hyksort_still_ooms_under_memory_ramp() {
    let report = World::new(P)
        .cores_per_node(3)
        .net(NetModel::edison())
        .compute_scale(0.0)
        .memory_budget(BUDGET)
        .faults(ramp())
        .run(|comm| {
            let mut cfg = HykSortConfig {
                charge: sdssort::ComputeCharge::Modeled(ComputeModel::nominal()),
                ..HykSortConfig::default()
            };
            cfg.k = 2;
            hyksort(comm, input(comm.rank()), &cfg).map(|o| o.data)
        });
    assert!(
        report
            .results
            .iter()
            .all(|r| matches!(r, Err(SortError::Oom(_)) | Err(SortError::PeerOom))),
        "HykSort has no degradation path; the ramp must crash it everywhere"
    );
}

#[test]
fn resilient_sds_sort_survives_the_same_ramp() {
    let dir = std::env::temp_dir().join(format!("baselines-degradation-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let rcfg = ResilienceConfig::new(dir.clone());
    let report = World::new(P)
        .cores_per_node(3)
        .net(NetModel::edison())
        .compute_scale(0.0)
        .memory_budget(BUDGET)
        .faults(ramp())
        .run(move |comm| {
            let mut cfg = SdsConfig::modeled(ComputeModel::nominal());
            cfg.tau_m_bytes = 0;
            cfg.tau_o = 0;
            let out = sds_sort_resilient(comm, input(comm.rank()), &cfg, &rcfg)
                .expect("resilient driver survives the ramp HykSort dies under");
            (
                is_globally_sorted(comm, &out.data),
                out.stats.spilled,
                out.data.len(),
            )
        });
    assert!(report.results.iter().all(|r| r.0));
    assert!(report.results.iter().any(|r| r.1), "someone spilled");
    let total: usize = report.results.iter().map(|r| r.2).sum();
    assert_eq!(total, P * N);
    let _ = std::fs::remove_dir_all(&dir);
}
