//! Distributed radix sort: correctness on benign inputs, OOM on skew.

use baselines::radix_sort;
use mpisim::{NetModel, World};
use sdssort::{OrderedF32, Record, SortError};
use workloads::{uniform_u64, zipf_keys};

fn world(p: usize) -> World {
    World::new(p).cores_per_node(4).net(NetModel::zero())
}

fn check_sorted_permutation(inputs: &[Vec<u64>], outputs: &[Vec<u64>]) {
    let flat: Vec<u64> = outputs.iter().flatten().copied().collect();
    assert!(flat.windows(2).all(|w| w[0] <= w[1]), "not globally sorted");
    let mut a: Vec<u64> = inputs.iter().flatten().copied().collect();
    let mut b = flat;
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "not a permutation");
}

#[test]
fn radix_sorts_uniform_various_p() {
    for p in [1usize, 2, 4, 7, 8] {
        let report = world(p).run(|comm| {
            let data = uniform_u64(2000, 5, comm.rank());
            let out = radix_sort(comm, data.clone()).expect("no budget");
            (data, out.data)
        });
        let (inputs, outputs): (Vec<_>, Vec<_>) = report.results.into_iter().unzip();
        check_sorted_permutation(&inputs, &outputs);
    }
}

#[test]
fn radix_sorts_small_key_domain() {
    // Narrow keys exercise the adaptive shift (top bits of the used range).
    let report = world(6).run(|comm| {
        let data: Vec<u64> = uniform_u64(1500, 9, comm.rank())
            .into_iter()
            .map(|k| k % 256)
            .collect();
        let out = radix_sort(comm, data.clone()).expect("no budget");
        (data, out.data)
    });
    let (inputs, outputs): (Vec<_>, Vec<_>) = report.results.into_iter().unzip();
    check_sorted_permutation(&inputs, &outputs);
}

#[test]
fn radix_sorts_float_keys() {
    let report = world(4).run(|comm| {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(comm.rank() as u64);
        let data: Vec<Record<OrderedF32, u32>> = (0..1000)
            .map(|i| Record::new(OrderedF32::new(rng.gen::<f32>() * 2.0 - 1.0), i))
            .collect();
        let out = radix_sort(comm, data).expect("no budget");
        out.data
    });
    let flat: Vec<f32> = report
        .results
        .iter()
        .flatten()
        .map(|r| r.key.value())
        .collect();
    assert!(flat.windows(2).all(|w| w[0] <= w[1]));
    assert_eq!(flat.len(), 4000);
}

#[test]
fn radix_handles_zipf_without_budget() {
    let report = world(8).run(|comm| {
        let data = zipf_keys(2000, 0.9, 3, comm.rank());
        let out = radix_sort(comm, data.clone()).expect("no budget");
        (data, out.data)
    });
    let (inputs, outputs): (Vec<_>, Vec<_>) = report.results.into_iter().unzip();
    check_sorted_permutation(&inputs, &outputs);
    // the popular digit pins its whole population on one rank
    let max = outputs.iter().map(Vec::len).max().unwrap();
    let avg = 2000;
    assert!(max > avg, "radix should show imbalance on zipf (max {max})");
}

#[test]
fn radix_ooms_on_heavy_duplicates_under_budget() {
    let p = 8;
    let n = 4000usize;
    let budget = 6 * n * 8; // same budget that SDS-Sort survives
    let world = World::new(p)
        .cores_per_node(4)
        .net(NetModel::zero())
        .memory_budget(budget);
    let res = world.run(|comm| {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(comm.rank() as u64 ^ 0xDEAD);
        let data: Vec<u64> = (0..n as u64)
            .map(|_| {
                if rng.gen_bool(0.99) {
                    123
                } else {
                    rng.gen_range(0..1000)
                }
            })
            .collect();
        radix_sort(comm, data).map(|o| o.data.len())
    });
    assert!(
        res.results.iter().all(Result::is_err),
        "radix sort must OOM on 99% duplicates under the budget SDS-Sort survives"
    );
    assert!(res
        .results
        .iter()
        .any(|r| matches!(r, Err(SortError::Oom(_)))));
}

#[test]
fn radix_empty_and_tiny() {
    let report = world(4).run(|comm| {
        let data: Vec<u64> = if comm.rank() == 1 { vec![42] } else { vec![] };
        radix_sort(comm, data).expect("no budget").data
    });
    let total: usize = report.results.iter().map(Vec::len).sum();
    assert_eq!(total, 1);
}

#[test]
fn radix_full_u64_range_boundaries() {
    // Keys saturating the top of the u64 range exercise the 2^64 boundary
    // arithmetic in the digit-range cuts.
    let report = world(4).run(|comm| {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(comm.rank() as u64 + 77);
        let mut data: Vec<u64> = (0..1000).map(|_| rng.gen()).collect();
        data.extend([u64::MAX, u64::MAX - 1, 0, 1]);
        let out = radix_sort(comm, data.clone()).expect("no budget");
        (data, out.data)
    });
    let (inputs, outputs): (Vec<_>, Vec<_>) = report.results.into_iter().unzip();
    check_sorted_permutation(&inputs, &outputs);
}
