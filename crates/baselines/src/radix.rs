//! Distributed radix sort (Thearling & Smith, Supercomputing'92 — cited as
//! \[30\] in the paper's related work).
//!
//! Parallel radix sorting for integer-like keys: build a *global histogram*
//! of the keys' top digits, carve the digit space into `p` contiguous
//! ranges of (approximately) equal global population, exchange once, and
//! finish each rank locally. Unlike comparison sample sorts this needs no
//! pivot selection — but the digit ranges cannot split *within* one key
//! value, so a heavily duplicated key pins its entire population to one
//! rank: radix sort shares HykSort's skew failure mode, which is why the
//! paper's related-work section groups it with the non-robust baselines.
//!
//! Keys must expose a monotone unsigned-integer mapping ([`RadixKey`],
//! shared with `sdssort`'s local radix kernel); provided for the integer
//! primitives and the total-order float wrappers. 128-bit keys implement
//! the trait with `USABLE = false` and are rejected at runtime.

use mpisim::Comm;
use sdssort::record::Sortable;
use sdssort::sort::{SortError, SortOutput};
use sdssort::stats::SortStats;

pub use sdssort::record::RadixKey;

/// Digit width of the global histogram (top `HIST_BITS` bits of the key).
const HIST_BITS: u32 = 12;
const HIST_SIZE: usize = 1 << HIST_BITS;

fn top_digit(key: u64, shift: u32) -> usize {
    (key >> shift) as usize
}

/// Carve the digit histogram into `p` contiguous ranges of approximately
/// equal population; returns the inclusive end digits of the first `p - 1`
/// ranges (the last range runs to the end of the histogram).
///
/// Boundary `k` goes at the first digit whose cumulative population
/// reaches the ideal curve `(k + 1) · total / p`, so rounding never
/// accumulates across ranges. The previous per-range quota with an
/// accumulator reset (`acc = 0` after each boundary) discarded the
/// overshoot above the quota: on a uniform histogram every range rounded
/// up to whole buckets, the compounded drift exhausted the digit space
/// before `p - 1` boundaries were placed, and the trailing ranks received
/// empty ranges.
pub fn carve_ranges(hist: &[u64], p: usize) -> Vec<usize> {
    assert!(p >= 1 && !hist.is_empty());
    let total: u64 = hist.iter().sum();
    let mut range_end_digit = Vec::with_capacity(p.saturating_sub(1));
    let mut cum: u64 = 0;
    for (digit, &count) in hist.iter().enumerate() {
        cum += count;
        // One boundary per digit: a digit spanning several ideal marks
        // cannot be split (the skew failure), so later marks fall on the
        // digits after it.
        if range_end_digit.len() < p - 1
            && u128::from(cum) * p as u128
                >= (range_end_digit.len() as u128 + 1) * u128::from(total)
        {
            range_end_digit.push(digit);
        }
    }
    while range_end_digit.len() < p - 1 {
        range_end_digit.push(hist.len() - 1);
    }
    range_end_digit
}

/// Distributed radix sort. Unstable. Fails collectively with
/// [`SortError`] under the simulated memory budget, exactly like the
/// other skew-vulnerable baselines.
pub fn radix_sort<T>(comm: &Comm, mut data: Vec<T>) -> Result<SortOutput<T>, SortError>
where
    T: Sortable,
    T::Key: RadixKey,
{
    assert!(
        <T::Key as RadixKey>::USABLE,
        "radix baseline requires a key with a usable u64 embedding"
    );
    let p = comm.size();
    let mut stats = SortStats {
        input_count: data.len(),
        ..SortStats::default()
    };
    let t0 = comm.clock().now();

    // Local sort once: boundaries then become binary searches, and the
    // final ordering is a k-way-mergeable layout.
    comm.compute(|| data.sort_unstable_by_key(|r| r.key().radix_u64()));
    if p == 1 {
        stats.pivot_s = comm.clock().now() - t0;
        stats.recv_count = data.len();
        return Ok(SortOutput { data, stats });
    }

    // Find the key width actually in use so the histogram covers the top
    // HIST_BITS of the *occupied* range (fixed shift would waste buckets
    // on narrow keys).
    let local_max = data.last().map_or(0, |r| r.key().radix_u64());
    let global_max = comm.allreduce(local_max, u64::max);
    let used_bits = 64 - global_max.leading_zeros();
    let shift = used_bits.saturating_sub(HIST_BITS);

    // Global digit histogram.
    let mut hist = vec![0u64; HIST_SIZE];
    comm.compute(|| {
        for r in &data {
            hist[top_digit(r.key().radix_u64(), shift).min(HIST_SIZE - 1)] += 1;
        }
    });
    let hist = comm.allreduce(hist, |a, b| a.iter().zip(&b).map(|(x, y)| x + y).collect());

    // Carve digit space into p ranges of ≈ total/p population. A single
    // over-populated digit cannot be split — the skew failure.
    let range_end_digit = comm.compute(|| carve_ranges(&hist, p));

    // Cut local (sorted) data at each range boundary.
    let mut cuts = Vec::with_capacity(p + 1);
    cuts.push(0usize);
    for &end_digit in &range_end_digit {
        // First record whose top digit exceeds end_digit. Computed in u128:
        // the last digit's upper boundary is 2^64, which overflows u64.
        let boundary = (end_digit as u128 + 1) << shift;
        let pos = if boundary > u64::MAX as u128 {
            data.len()
        } else {
            let boundary_key = boundary as u64;
            comm.compute(|| data.partition_point(|r| r.key().radix_u64() < boundary_key))
        };
        cuts.push(pos);
    }
    cuts.push(data.len());
    debug_assert!(cuts.windows(2).all(|w| w[0] <= w[1]));
    let scounts: Vec<usize> = cuts.windows(2).map(|w| w[1] - w[0]).collect();
    stats.pivot_s = comm.clock().now() - t0;

    // Exchange with the collective memory check.
    let t1 = comm.clock().now();
    let rcounts = comm.alltoall(&scounts);
    let m: usize = rcounts.iter().sum();
    let bytes = m * std::mem::size_of::<T>();
    let my_alloc = comm.try_alloc(bytes);
    let any_oom = comm.allreduce(my_alloc.is_err() as u8, |a, b| a.max(b)) > 0;
    if any_oom {
        if my_alloc.is_ok() {
            comm.free(bytes);
        }
        return Err(match my_alloc {
            Err(e) => SortError::Oom(e),
            Ok(()) => SortError::PeerOom,
        });
    }
    let buf = comm.alltoallv_given_counts(&data, &scounts, &rcounts);
    drop(data);
    stats.exchange_s = comm.clock().now() - t1;

    // Local ordering of the received chunks.
    let t2 = comm.clock().now();
    let mut disp = Vec::with_capacity(p + 1);
    disp.push(0usize);
    for &rc in &rcounts {
        disp.push(disp.last().copied().expect("non-empty") + rc);
    }
    let out = comm.compute(|| sdssort::merge::kway_merge_offsets(&buf, &disp));
    stats.local_order_s = comm.clock().now() - t2;
    comm.free(bytes);
    stats.recv_count = out.len();
    Ok(SortOutput { data: out, stats })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Population of each of the `p` ranges implied by the end digits.
    fn range_pops(hist: &[u64], ends: &[usize]) -> Vec<u64> {
        let mut pops = Vec::with_capacity(ends.len() + 1);
        let mut start = 0usize;
        for &end in ends {
            pops.push(hist[start..=end].iter().sum());
            start = end + 1;
        }
        pops.push(hist[start.min(hist.len())..].iter().sum());
        pops
    }

    #[test]
    fn carve_balances_uniform_histogram() {
        // Regression for the acc-reset bug: on a uniform histogram every
        // range used to round up to whole buckets without carrying the
        // overshoot, the cumulative drift ran out of digits after ~4/5 of
        // the boundaries, and the trailing ranks got empty ranges.
        let hist = vec![10u64; 4096];
        let p = 1000usize;
        let ends = carve_ranges(&hist, p);
        assert_eq!(ends.len(), p - 1);
        assert!(
            ends.windows(2).all(|w| w[0] < w[1]),
            "boundaries must strictly advance on a uniform histogram"
        );
        let pops = range_pops(&hist, &ends);
        assert_eq!(pops.len(), p);
        assert_eq!(pops.iter().sum::<u64>(), 40_960);
        let ideal = 40_960u64 / p as u64; // 40.96 → 40
        assert!(
            *pops.iter().min().unwrap() > 0,
            "no rank may receive an empty range: {pops:?}"
        );
        assert!(
            *pops.iter().max().unwrap() <= 2 * (ideal + 1),
            "max range within 2x of ideal: max={}",
            pops.iter().max().unwrap()
        );
    }

    #[test]
    fn carve_survives_dominant_digit() {
        // One digit holds 90% of the population: it cannot be split (the
        // documented skew failure), but carving must still return p - 1
        // in-bounds, non-decreasing boundaries.
        let mut hist = vec![1u64; 256];
        hist[40] = 10_000;
        let p = 8usize;
        let ends = carve_ranges(&hist, p);
        assert_eq!(ends.len(), p - 1);
        assert!(ends.windows(2).all(|w| w[0] <= w[1]));
        assert!(ends.iter().all(|&e| e < 256));
        assert_eq!(range_pops(&hist, &ends).iter().sum::<u64>(), 10_255);
    }

    #[test]
    fn carve_single_rank_is_trivial() {
        assert!(carve_ranges(&[5, 5, 5], 1).is_empty());
    }
}
