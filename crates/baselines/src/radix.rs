//! Distributed radix sort (Thearling & Smith, Supercomputing'92 — cited as
//! \[30\] in the paper's related work).
//!
//! Parallel radix sorting for integer-like keys: build a *global histogram*
//! of the keys' top digits, carve the digit space into `p` contiguous
//! ranges of (approximately) equal global population, exchange once, and
//! finish each rank locally. Unlike comparison sample sorts this needs no
//! pivot selection — but the digit ranges cannot split *within* one key
//! value, so a heavily duplicated key pins its entire population to one
//! rank: radix sort shares HykSort's skew failure mode, which is why the
//! paper's related-work section groups it with the non-robust baselines.
//!
//! Keys must expose a monotone unsigned-integer mapping ([`RadixKey`]);
//! provided for all unsigned primitives and the total-order float
//! wrappers.

use mpisim::Comm;
use sdssort::record::{OrderedF32, OrderedF64, Sortable};
use sdssort::sort::{SortError, SortOutput};
use sdssort::stats::SortStats;

/// A key with an order-preserving mapping to `u64`:
/// `a <= b  ⇔  a.radix_u64() <= b.radix_u64()`.
pub trait RadixKey: Copy {
    /// The monotone unsigned mapping.
    fn radix_u64(&self) -> u64;
}

macro_rules! impl_radix_uint {
    ($($t:ty),*) => {$(
        impl RadixKey for $t {
            #[inline]
            fn radix_u64(&self) -> u64 {
                *self as u64
            }
        }
    )*};
}
impl_radix_uint!(u8, u16, u32, u64, usize);

impl RadixKey for OrderedF32 {
    #[inline]
    fn radix_u64(&self) -> u64 {
        self.ordered_bits() as u64
    }
}

impl RadixKey for OrderedF64 {
    #[inline]
    fn radix_u64(&self) -> u64 {
        self.ordered_bits()
    }
}

/// Digit width of the global histogram (top `HIST_BITS` bits of the key).
const HIST_BITS: u32 = 12;
const HIST_SIZE: usize = 1 << HIST_BITS;

fn top_digit(key: u64, shift: u32) -> usize {
    (key >> shift) as usize
}

/// Distributed radix sort. Unstable. Fails collectively with
/// [`SortError`] under the simulated memory budget, exactly like the
/// other skew-vulnerable baselines.
pub fn radix_sort<T>(comm: &Comm, mut data: Vec<T>) -> Result<SortOutput<T>, SortError>
where
    T: Sortable,
    T::Key: RadixKey,
{
    let p = comm.size();
    let mut stats = SortStats {
        input_count: data.len(),
        ..SortStats::default()
    };
    let t0 = comm.clock().now();

    // Local sort once: boundaries then become binary searches, and the
    // final ordering is a k-way-mergeable layout.
    comm.compute(|| data.sort_unstable_by_key(|r| r.key().radix_u64()));
    if p == 1 {
        stats.pivot_s = comm.clock().now() - t0;
        stats.recv_count = data.len();
        return Ok(SortOutput { data, stats });
    }

    // Find the key width actually in use so the histogram covers the top
    // HIST_BITS of the *occupied* range (fixed shift would waste buckets
    // on narrow keys).
    let local_max = data.last().map_or(0, |r| r.key().radix_u64());
    let global_max = comm.allreduce(local_max, u64::max);
    let used_bits = 64 - global_max.leading_zeros();
    let shift = used_bits.saturating_sub(HIST_BITS);

    // Global digit histogram.
    let mut hist = vec![0u64; HIST_SIZE];
    comm.compute(|| {
        for r in &data {
            hist[top_digit(r.key().radix_u64(), shift).min(HIST_SIZE - 1)] += 1;
        }
    });
    let hist = comm.allreduce(hist, |a, b| a.iter().zip(&b).map(|(x, y)| x + y).collect());
    let total: u64 = hist.iter().sum();

    // Carve digit space into p ranges of ≈ total/p population. A single
    // over-populated digit cannot be split — the skew failure.
    let target = total.div_ceil(p as u64).max(1);
    let mut range_end_digit = Vec::with_capacity(p);
    let mut acc = 0u64;
    for (digit, &count) in hist.iter().enumerate() {
        acc += count;
        if acc >= target && range_end_digit.len() < p - 1 {
            range_end_digit.push(digit);
            acc = 0;
        }
    }
    while range_end_digit.len() < p - 1 {
        range_end_digit.push(HIST_SIZE - 1);
    }

    // Cut local (sorted) data at each range boundary.
    let mut cuts = Vec::with_capacity(p + 1);
    cuts.push(0usize);
    for &end_digit in &range_end_digit {
        // First record whose top digit exceeds end_digit. Computed in u128:
        // the last digit's upper boundary is 2^64, which overflows u64.
        let boundary = (end_digit as u128 + 1) << shift;
        let pos = if boundary > u64::MAX as u128 {
            data.len()
        } else {
            let boundary_key = boundary as u64;
            comm.compute(|| data.partition_point(|r| r.key().radix_u64() < boundary_key))
        };
        cuts.push(pos);
    }
    cuts.push(data.len());
    debug_assert!(cuts.windows(2).all(|w| w[0] <= w[1]));
    let scounts: Vec<usize> = cuts.windows(2).map(|w| w[1] - w[0]).collect();
    stats.pivot_s = comm.clock().now() - t0;

    // Exchange with the collective memory check.
    let t1 = comm.clock().now();
    let rcounts = comm.alltoall(&scounts);
    let m: usize = rcounts.iter().sum();
    let bytes = m * std::mem::size_of::<T>();
    let my_alloc = comm.try_alloc(bytes);
    let any_oom = comm.allreduce(my_alloc.is_err() as u8, |a, b| a.max(b)) > 0;
    if any_oom {
        if my_alloc.is_ok() {
            comm.free(bytes);
        }
        return Err(match my_alloc {
            Err(e) => SortError::Oom(e),
            Ok(()) => SortError::PeerOom,
        });
    }
    let buf = comm.alltoallv_given_counts(&data, &scounts, &rcounts);
    drop(data);
    stats.exchange_s = comm.clock().now() - t1;

    // Local ordering of the received chunks.
    let t2 = comm.clock().now();
    let mut disp = Vec::with_capacity(p + 1);
    disp.push(0usize);
    for &rc in &rcounts {
        disp.push(disp.last().copied().expect("non-empty") + rc);
    }
    let out = comm.compute(|| sdssort::merge::kway_merge_offsets(&buf, &disp));
    stats.local_order_s = comm.clock().now() - t2;
    comm.free(bytes);
    stats.recv_count = out.len();
    Ok(SortOutput { data: out, stats })
}
