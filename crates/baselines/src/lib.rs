//! # baselines — comparison sorters for the SDS-Sort evaluation
//!
//! Every system the paper compares against, implemented from scratch on
//! the same [`mpisim`] runtime and [`sdssort`] record abstractions:
//!
//! * [`hyksort()`](hyksort::hyksort) — HykSort (ICS'13), the state-of-the-art baseline:
//!   k-way hypercube sample sort with histogram-based splitter selection.
//! * [`histogram`] — the iterative histogram splitter refinement itself
//!   (Solomonik & Kale, IPDPS'10).
//! * [`samplesort`] — classical parallel sort by regular sampling (PSRS,
//!   Li et al. 1993).
//! * [`bitonic`] — full parallel bitonic / odd-even block sort, the
//!   non-sampling baseline from related work.
//! * [`radix`] — distributed radix sort with global digit histograms
//!   (related work \[30\]); skew-vulnerable like HykSort.
//! * [`seqscan`] — partitioning-kernel baselines for Fig. 6b (full linear
//!   scan and per-pivot binary search).
//!
//! HykSort and sample sort allocate their receive buffers through the
//! simulated per-rank memory budget, reproducing the paper's observed OOM
//! crashes on highly skewed inputs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitonic;
pub mod histogram;
pub mod hyksort;
pub mod radix;
pub mod samplesort;
pub mod seqscan;

pub use bitonic::bitonic_sort;
pub use histogram::{histogram_splitters, HistogramConfig};
pub use hyksort::{hyksort, HykSortConfig};
pub use radix::{radix_sort, RadixKey};
pub use samplesort::{sample_sort, SampleSortConfig};
pub use seqscan::{binary_cuts, full_scan_cuts};
