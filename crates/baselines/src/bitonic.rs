//! Full parallel bitonic sort — the classical non-sampling baseline
//! (Bilardi & Nicolau; cited as \[4\] in the paper's related work).
//!
//! Block formulation: every rank holds an equal-length sorted block; each
//! comparator of the bitonic network becomes a merge-split (exchange
//! blocks, merge, keep low/high half). Communication volume is
//! `O(n/p · log² p)` versus sample sort's single exchange — the reason the
//! paper's related-work section dismisses non-sampling sorts on
//! distributed memory.
//!
//! Non-power-of-two worlds use odd-even transposition (`p` rounds), which
//! shares the merge-split kernel.

use mpisim::Comm;
use sdssort::merge::merge_two;
use sdssort::record::Sortable;

fn merge_split<T: Sortable>(
    comm: &Comm,
    block: &mut Vec<T>,
    partner: usize,
    keep_low: bool,
    tag: u64,
) {
    comm.send_slice(partner, tag, block);
    let theirs: Vec<T> = comm.recv_vec(partner, tag);
    let merged = merge_two(block, &theirs);
    let keep = block.len();
    block.clear();
    if keep_low {
        block.extend_from_slice(&merged[..keep]);
    } else {
        let lo = merged
            .len()
            .checked_sub(keep)
            .expect("merged holds ours + theirs, so merged.len() >= keep");
        block.extend_from_slice(&merged[lo..]);
    }
}

/// Sort `data` across `comm` with a block bitonic network (power-of-two
/// worlds) or block odd-even transposition (otherwise).
///
/// Requires every rank to hold the same number of records (checked
/// collectively); pad externally if necessary.
pub fn bitonic_sort<T: Sortable>(comm: &Comm, mut data: Vec<T>) -> Vec<T> {
    let p = comm.size();
    let (min_n, max_n) = comm.allreduce((data.len(), data.len()), |a, b| {
        (a.0.min(b.0), a.1.max(b.1))
    });
    assert_eq!(min_n, max_n, "bitonic baseline requires equal block sizes");
    comm.compute(|| data.sort_unstable_by_key(|r| r.key()));
    if p == 1 {
        return data;
    }
    let r = comm.rank();
    if p.is_power_of_two() {
        let stages = p.trailing_zeros();
        let mut round: u64 = 0;
        for k in 1..=stages {
            for j in (0..k).rev() {
                let partner = r ^ (1usize << j);
                let ascending = (r >> k) & 1 == 0;
                let keep_low = (r < partner) == ascending;
                merge_split(comm, &mut data, partner, keep_low, 3000 + round);
                round += 1;
            }
        }
    } else {
        for round in 0..p {
            let even_round = round % 2 == 0;
            let partner = if r.is_multiple_of(2) == even_round {
                (r + 1 < p).then(|| r + 1)
            } else {
                (r > 0).then(|| r - 1)
            };
            if let Some(partner) = partner {
                merge_split(comm, &mut data, partner, r < partner, 4000 + round as u64);
            }
        }
    }
    data
}
