//! Classical parallel sort by regular sampling (PSRS; Li et al. 1993).
//!
//! The textbook three-phase algorithm the SDS-Sort paper builds on: local
//! sort, regular sampling with gather-based pivot selection, classic
//! `upper_bound` partitioning, one all-to-all, k-way merge. Its workload
//! bound is `O(2N/p)` *without* duplicate keys and degrades linearly with
//! skew — it shares HykSort's duplicate-pivot failure mode and serves as
//! the second baseline.

use mpisim::Comm;
use sdssort::config::{ComputeCharge, ComputeModel};
use sdssort::merge::kway_merge_offsets;
use sdssort::partition::{classic_cuts, cuts_to_counts};
use sdssort::pivots::{select_global_pivots, PivotMethod};
use sdssort::record::Sortable;
use sdssort::sampling::regular_sample;
use sdssort::sort::{SortError, SortOutput};
use sdssort::stats::SortStats;

/// Configuration for classical sample sort.
#[derive(Debug, Clone, Copy)]
pub struct SampleSortConfig {
    /// Compute charging.
    pub charge: ComputeCharge,
}

impl Default for SampleSortConfig {
    fn default() -> Self {
        Self {
            charge: ComputeCharge::Measured,
        }
    }
}

fn charged<R>(
    comm: &Comm,
    cfg: &SampleSortConfig,
    cost: impl FnOnce(&ComputeModel) -> f64,
    f: impl FnOnce() -> R,
) -> R {
    match cfg.charge {
        ComputeCharge::Measured => comm.compute(f),
        ComputeCharge::Modeled(m) => {
            let r = f();
            comm.clock().charge(cost(&m));
            r
        }
    }
}

/// Classical PSRS sort of `data` across `comm`. Unstable.
pub fn sample_sort<T: Sortable>(
    comm: &Comm,
    mut data: Vec<T>,
    cfg: &SampleSortConfig,
) -> Result<SortOutput<T>, SortError> {
    let p = comm.size();
    let mut stats = SortStats {
        input_count: data.len(),
        ..SortStats::default()
    };
    let t0 = comm.clock().now();

    let n0 = data.len();
    charged(
        comm,
        cfg,
        |m| m.sort_cost(n0),
        || data.sort_unstable_by_key(|r| r.key()),
    );
    if p == 1 {
        stats.pivot_s = comm.clock().now() - t0;
        stats.recv_count = data.len();
        return Ok(SortOutput { data, stats });
    }

    // Regular sampling + gather-based pivot selection (the classical
    // formulation gathers all p(p-1) samples on one rank).
    let samples = regular_sample(&data, p - 1);
    let mut pivots = select_global_pivots(comm, &samples, PivotMethod::Gather);
    if pivots.len() < p - 1 {
        if let Some(&last) = pivots.last() {
            pivots.resize(p - 1, last);
        }
    }
    let cuts = if pivots.is_empty() {
        let mut c = vec![data.len(); p + 1];
        c[0] = 0;
        c
    } else {
        classic_cuts(&data, &pivots)
    };
    let scounts = cuts_to_counts(&cuts);
    stats.pivot_s = comm.clock().now() - t0;

    // Exchange with collective memory check.
    let t1 = comm.clock().now();
    let rcounts = comm.alltoall(&scounts);
    let m: usize = rcounts.iter().sum();
    let bytes = m * std::mem::size_of::<T>();
    let my_alloc = comm.try_alloc(bytes);
    let any_oom = comm.allreduce(my_alloc.is_err() as u8, |a, b| a.max(b)) > 0;
    if any_oom {
        if my_alloc.is_ok() {
            comm.free(bytes);
        }
        return Err(match my_alloc {
            Err(e) => SortError::Oom(e),
            Ok(()) => SortError::PeerOom,
        });
    }
    let buf = comm.alltoallv_given_counts(&data, &scounts, &rcounts);
    drop(data);
    stats.exchange_s = comm.clock().now() - t1;

    // Final k-way merge.
    let t2 = comm.clock().now();
    let mut disp = Vec::with_capacity(p + 1);
    disp.push(0usize);
    for &rc in &rcounts {
        disp.push(disp.last().copied().expect("non-empty") + rc);
    }
    let out = charged(
        comm,
        cfg,
        |mo| mo.kway_merge_cost(m, p),
        || kway_merge_offsets(&buf, &disp),
    );
    stats.local_order_s = comm.clock().now() - t2;
    comm.free(bytes);
    stats.recv_count = out.len();
    Ok(SortOutput { data: out, stats })
}
