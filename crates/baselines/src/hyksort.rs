//! HykSort (Sundar, Malhotra, Biros — ICS'13), the paper's primary
//! baseline.
//!
//! HykSort generalizes hypercube quicksort: each stage selects `k-1`
//! splitters by iterative histogramming, buckets local data with
//! `upper_bound`, exchanges buckets so that the ranks split into `k`
//! consecutive groups each holding one bucket, merges the received chunks
//! (overlapped with the exchange, per the paper's footnote that HykSort's
//! exchange time includes local ordering), and recurses within the group.
//! With `k = p` it degenerates to single-stage sample sort with histogram
//! pivots.
//!
//! On skewed data the splitters are duplicated key values and `upper_bound`
//! bucketing assigns *all* duplicates of a splitter to one group — the load
//! imbalance that SDS-Sort's evaluation shows growing into out-of-memory
//! failures (Tables 3/4 report RDFA = ∞). The receive-buffer allocation
//! here goes through the simulated memory budget to reproduce exactly
//! that.

use crate::histogram::{histogram_splitters, HistogramConfig};
use mpisim::Comm;
use sdssort::config::{ComputeCharge, ComputeModel};
use sdssort::merge::merge_two;
use sdssort::partition::{classic_cuts, cuts_to_counts};
use sdssort::record::Sortable;
use sdssort::sort::{SortError, SortOutput};
use sdssort::stats::SortStats;

/// HykSort configuration.
#[derive(Debug, Clone, Copy)]
pub struct HykSortConfig {
    /// Fan-out per stage (`k`-way communication; the HykSort paper found
    /// k = 128 optimal, which SDS-Sort's evaluation reuses).
    pub k: usize,
    /// Histogram refinement parameters.
    pub hist: HistogramConfig,
    /// Compute charging (see [`ComputeCharge`]).
    pub charge: ComputeCharge,
    /// Seed for splitter sampling.
    pub seed: u64,
}

impl Default for HykSortConfig {
    fn default() -> Self {
        Self {
            k: 128,
            hist: HistogramConfig::default(),
            charge: ComputeCharge::Measured,
            seed: 0xCAFE,
        }
    }
}

fn model_of(cfg: &HykSortConfig) -> Option<ComputeModel> {
    match cfg.charge {
        ComputeCharge::Measured => None,
        ComputeCharge::Modeled(m) => Some(m),
    }
}

fn charged<R>(
    comm: &Comm,
    cfg: &HykSortConfig,
    cost: impl FnOnce(&ComputeModel) -> f64,
    f: impl FnOnce() -> R,
) -> R {
    match model_of(cfg) {
        None => comm.compute(f),
        Some(m) => {
            let r = f();
            comm.clock().charge(cost(&m));
            r
        }
    }
}

/// Largest divisor of `p` that is ≤ `kmax` and ≥ 2; `p` itself when `p` is
/// prime and exceeds `kmax` (single-stage fallback).
fn choose_k(p: usize, kmax: usize) -> usize {
    debug_assert!(p >= 2);
    let mut best = 1usize;
    let mut d = 2usize;
    while d * d <= p {
        if p.is_multiple_of(d) {
            if d <= kmax {
                best = best.max(d);
            }
            let q = p / d;
            if q <= kmax {
                best = best.max(q);
            }
        }
        d += 1;
    }
    if p <= kmax {
        best = best.max(p);
    }
    if best >= 2 {
        best
    } else {
        p
    }
}

/// Sort `data` across `comm` with HykSort. Unstable. Fails collectively
/// with [`SortError`] when any rank's receive buffer exceeds the simulated
/// memory budget.
pub fn hyksort<T: Sortable>(
    comm: &Comm,
    mut data: Vec<T>,
    cfg: &HykSortConfig,
) -> Result<SortOutput<T>, SortError> {
    let mut stats = SortStats {
        input_count: data.len(),
        ..SortStats::default()
    };
    let n0 = data.len();
    charged(
        comm,
        cfg,
        |m| m.sort_cost(n0),
        || {
            data.sort_unstable_by_key(|r| r.key());
        },
    );
    let data = stage(comm, data, cfg, &mut stats, 0)?;
    stats.recv_count = data.len();
    Ok(SortOutput { data, stats })
}

fn stage<T: Sortable>(
    comm: &Comm,
    data: Vec<T>,
    cfg: &HykSortConfig,
    stats: &mut SortStats,
    depth: u64,
) -> Result<Vec<T>, SortError> {
    let p = comm.size();
    if p == 1 {
        return Ok(data);
    }
    let k = choose_k(p, cfg.k.max(2));
    let g = p / k; // group size after this stage

    // Splitter selection (histogram refinement).
    let t0 = comm.clock().now();
    let splitters = histogram_splitters(comm, &data, k, &cfg.hist, cfg.seed ^ depth);
    stats.pivot_s += comm.clock().now() - t0;

    // Classic bucketing: all duplicates of a splitter go to one bucket.
    let t1 = comm.clock().now();
    let bucket_counts = if splitters.is_empty() {
        let mut c = vec![0usize; k];
        c[0] = data.len();
        c
    } else {
        let mut padded = splitters.clone();
        if padded.len() < k - 1 {
            if let Some(&last) = padded.last() {
                padded.resize(k - 1, last);
            }
        }
        cuts_to_counts(&classic_cuts(&data, &padded))
    };
    debug_assert_eq!(bucket_counts.len(), k);

    // Bucket b goes to rank b·g + (rank mod g).
    let me = comm.rank();
    let mut send_counts = vec![0usize; p];
    for (b, &cnt) in bucket_counts.iter().enumerate() {
        let dst = b
            .checked_mul(g)
            .and_then(|bg| bg.checked_add(me % g))
            .expect("bucket destination b*g + (me%g) < p, which fit in usize above");
        send_counts[dst] = cnt;
    }
    let recv_counts = comm.alltoall(&send_counts);
    let m: usize = recv_counts.iter().sum();
    let bytes = m * std::mem::size_of::<T>();
    let my_alloc = comm.try_alloc(bytes);
    let any_oom = comm.allreduce(my_alloc.is_err() as u8, |a, b| a.max(b)) > 0;
    if any_oom {
        if my_alloc.is_ok() {
            comm.free(bytes);
        }
        return Err(match my_alloc {
            Err(e) => SortError::Oom(e),
            Ok(()) => SortError::PeerOom,
        });
    }

    // Asynchronous exchange overlapped with progressive merging; merge time
    // is charged to the exchange phase (paper footnote 4: HykSort's
    // exchange contains its local ordering).
    let mut pending = comm.alltoallv_async_given_counts(&data, &send_counts, recv_counts);
    drop(data);
    // Binomial-counter progressive merging (see sdssort::sort for the
    // volume argument).
    let mut runs: Vec<(u32, Vec<T>)> = Vec::new();
    while let Some((_src, chunk)) = pending.wait_any(comm) {
        runs.push((0, chunk));
        while runs.len() >= 2 && runs[runs.len() - 1].0 == runs[runs.len() - 2].0 {
            let (lvl, hi) = runs.pop().expect("len>=2");
            let (_, lo) = runs.pop().expect("len>=2");
            let merged = charged(
                comm,
                cfg,
                |mo| mo.kway_merge_cost(hi.len() + lo.len(), 2),
                || merge_two(&lo, &hi),
            );
            runs.push((lvl + 1, merged));
        }
    }
    // Balanced cascade over whatever the stack still holds (free when the
    // counter already collapsed everything into one run).
    let acc = if runs.len() == 1 {
        runs.pop().expect("len==1").1
    } else {
        let refs: Vec<&[T]> = runs.iter().map(|(_, r)| r.as_slice()).collect();
        let left: usize = refs.iter().map(|r| r.len()).sum();
        let k_left = refs.len();
        charged(
            comm,
            cfg,
            |mo| mo.kway_merge_cost(left, k_left),
            || sdssort::merge::kway_merge(&refs),
        )
    };
    comm.free(bytes);
    stats.exchange_s += comm.clock().now() - t1;

    if g == 1 {
        return Ok(acc);
    }
    let group = (me / g) as i64;
    let sub = comm
        .split(Some(group), (me % g) as i64)
        .expect("every rank is in a group");
    stage(&sub, acc, cfg, stats, depth + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn choose_k_prefers_largest_divisor() {
        assert_eq!(choose_k(16, 128), 16);
        assert_eq!(choose_k(256, 128), 128);
        assert_eq!(choose_k(12, 4), 4);
        assert_eq!(choose_k(12, 5), 4);
        assert_eq!(choose_k(9, 3), 3);
        // prime p above kmax: single stage with k = p
        assert_eq!(choose_k(7, 4), 7);
        assert_eq!(choose_k(2, 128), 2);
    }
}
