//! Histogram-based splitter selection — re-exported from
//! [`sdssort::histogram`], where the implementation lives so SDS-Sort can
//! also use it as an alternative pivot source
//! ([`sdssort::config::PivotSource::Histogram`]). HykSort consumes it from
//! here.

pub use sdssort::histogram::{histogram_splitters, HistogramConfig};
