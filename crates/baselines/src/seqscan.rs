//! Partitioning-kernel baselines for Fig. 6b.
//!
//! Fig. 6b compares the time to compute send displacements for `p-1`
//! pivots over sorted local data with three methods:
//!
//! * **Sequential scan** — one linear pass over all `n` records
//!   ([`full_scan_cuts`]), the traditional `O(n)` approach;
//! * **HykSort-style** — a direct binary search over the whole array per
//!   pivot, `O(p log n)` ([`binary_cuts`], equivalent to
//!   [`sdssort::partition::classic_cuts`]);
//! * **local-pivot** — SDS-Sort's two-level search, `O(p log p + p log(n/p))`
//!   (see [`sdssort::search::LocalPivotIndex`]).
//!
//! All three produce identical cut vectors (asserted by tests).

use sdssort::record::Sortable;

/// Cut positions by a single linear scan: walk the sorted data once,
/// advancing the pivot cursor as values pass each pivot.
pub fn full_scan_cuts<T: Sortable>(data: &[T], pivots: &[T::Key]) -> Vec<usize> {
    let p = pivots.len() + 1;
    let mut cuts = Vec::with_capacity(p + 1);
    cuts.push(0usize);
    let mut pi = 0usize;
    for (i, r) in data.iter().enumerate() {
        while pi < pivots.len() && r.key() > pivots[pi] {
            cuts.push(i);
            pi += 1;
        }
        if pi == pivots.len() {
            break;
        }
    }
    while cuts.len() < p {
        cuts.push(data.len());
    }
    cuts.push(data.len());
    cuts
}

/// Cut positions by direct binary search per pivot (HykSort's method).
pub fn binary_cuts<T: Sortable>(data: &[T], pivots: &[T::Key]) -> Vec<usize> {
    sdssort::partition::classic_cuts(data, pivots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn scan_matches_binary_cuts() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..30 {
            let n = rng.gen_range(0..500);
            let mut data: Vec<u32> = (0..n).map(|_| rng.gen_range(0..60)).collect();
            data.sort_unstable();
            let np = rng.gen_range(1..10);
            let mut pivots: Vec<u32> = (0..np).map(|_| rng.gen_range(0..60)).collect();
            pivots.sort_unstable();
            assert_eq!(
                full_scan_cuts(&data, &pivots),
                binary_cuts(&data, &pivots),
                "n={n} pivots={pivots:?}"
            );
        }
    }

    #[test]
    fn scan_handles_all_data_below_first_pivot() {
        let data = [1u32, 2, 3];
        assert_eq!(full_scan_cuts(&data, &[10, 20]), vec![0, 3, 3, 3]);
    }

    #[test]
    fn scan_handles_all_data_above_last_pivot() {
        let data = [11u32, 12, 13];
        assert_eq!(full_scan_cuts(&data, &[5, 10]), vec![0, 0, 0, 3]);
    }

    #[test]
    fn scan_empty_data() {
        let data: Vec<u32> = Vec::new();
        assert_eq!(full_scan_cuts(&data, &[5]), vec![0, 0, 0]);
    }
}
