//! Nonblocking point-to-point operations (`MPI_Isend`/`MPI_Irecv`/
//! `MPI_Test`/`MPI_Wait` analogues).
//!
//! The paper implements its asynchronous all-to-all from exactly these
//! primitives ("a function we implemented with MPI_Isend, MPI_Irecv, and
//! MPI_Test", §2.6). Our sends are buffered, so an isend completes at post
//! time; the interesting object is [`RecvRequest`], which can be tested
//! without blocking and waited on, and charges the model's per-test
//! progress overhead just like the async all-to-all.

use crate::comm::Comm;

/// Handle to a posted nonblocking receive.
///
/// Created by [`Comm::irecv`]; consume with [`test`](Self::test) /
/// [`wait`](Self::wait).
pub struct RecvRequest<T> {
    src: usize,
    tag: u64,
    done: Option<Vec<T>>,
}

impl Comm {
    /// Post a buffered (immediately completing) send — `MPI_Isend` with an
    /// implementation that buffers. Provided for symmetry and clarity at
    /// call sites; identical to [`Comm::send_vec`].
    pub fn isend<T: Clone + Send + 'static>(&self, dst: usize, tag: u64, data: Vec<T>) {
        self.send_vec(dst, tag, data);
    }

    /// Post a nonblocking receive for a message from `src` with `tag`.
    ///
    /// `tag` must be below [`Comm::MAX_USER_TAG`].
    pub fn irecv<T: Send + 'static>(&self, src: usize, tag: u64) -> RecvRequest<T> {
        assert!(
            tag < Self::MAX_USER_TAG,
            "tag {tag} is outside the user tag space: tags at or above \
             Comm::MAX_USER_TAG (2^48) are reserved for collective operations"
        );
        RecvRequest {
            src,
            tag,
            done: None,
        }
    }

    pub(crate) fn try_take_from<T: Send + 'static>(&self, src: usize, tag: u64) -> Option<Vec<T>> {
        self.try_recv_from(src, tag)
    }
}

impl<T: Send + 'static> RecvRequest<T> {
    /// Nonblocking completion test (`MPI_Test`). Returns `true` once the
    /// message has arrived (after which [`wait`](Self::wait) is
    /// immediate). Charges the model's per-test progress overhead.
    pub fn test(&mut self, comm: &Comm) -> bool {
        if self.done.is_some() {
            return true;
        }
        comm.charge_comm(comm.universe().net().async_test_overhead);
        if let Some(data) = comm.try_take_from::<T>(self.src, self.tag) {
            self.done = Some(data);
            true
        } else {
            false
        }
    }

    /// Block until the message arrives and return it (`MPI_Wait`).
    pub fn wait(mut self, comm: &Comm) -> Vec<T> {
        if let Some(data) = self.done.take() {
            return data;
        }
        comm.recv_vec(self.src, self.tag)
    }

    /// Source rank this request is posted against.
    pub fn source(&self) -> usize {
        self.src
    }

    /// Tag this request is posted against.
    pub fn tag(&self) -> u64 {
        self.tag
    }
}

/// Wait for any of the given requests to complete; returns its index and
/// payload (`MPI_Waitany`). Charges one round-robin test sweep, then — if
/// nothing is ready — truly blocks until a matching message arrives, like
/// the blocking receive. The virtual-time cost of an idle wait is therefore
/// one sweep plus the arrival gap, independent of how long the OS schedules
/// the receiver to sleep.
pub fn wait_any<T: Send + 'static>(
    comm: &Comm,
    requests: &mut Vec<RecvRequest<T>>,
) -> Option<(usize, Vec<T>)> {
    if requests.is_empty() {
        return None;
    }
    // One MPI_Test sweep over the outstanding requests.
    comm.charge_comm(comm.universe().net().async_test_overhead * requests.len() as f64);
    for i in 0..requests.len() {
        let ready = requests[i].done.is_some()
            || match comm.try_take_from::<T>(requests[i].src, requests[i].tag) {
                Some(data) => {
                    requests[i].done = Some(data);
                    true
                }
                None => false,
            };
        if ready {
            let req = requests.swap_remove(i);
            let data = req.done.expect("request was completed above");
            return Some((i, data));
        }
    }
    // Nothing ready: block on the set of outstanding (src, tag) pairs.
    let specs: Vec<(usize, u64)> = requests.iter().map(|r| (r.src, r.tag)).collect();
    let (src, tag, data) = comm.recv_any_of_raw::<T>(&specs);
    let i = requests
        .iter()
        .position(|r| r.src == src && r.tag == tag)
        .expect("completed message matches a posted request");
    requests.swap_remove(i);
    Some((i, data))
}

#[cfg(test)]
mod tests {
    use crate::netmodel::NetModel;
    use crate::runtime::World;

    use super::wait_any;

    #[test]
    fn irecv_test_then_wait() {
        let report = World::new(2).net(NetModel::zero()).run(|comm| {
            if comm.rank() == 0 {
                comm.isend(1, 3, vec![1u32, 2, 3]);
                Vec::new()
            } else {
                let mut req = comm.irecv::<u32>(0, 3);
                // poll until complete
                while !req.test(comm) {
                    std::thread::yield_now();
                }
                req.wait(comm)
            }
        });
        assert_eq!(report.results[1], vec![1, 2, 3]);
    }

    #[test]
    fn wait_without_test_blocks_until_arrival() {
        let report = World::new(2).net(NetModel::zero()).run(|comm| {
            if comm.rank() == 0 {
                comm.isend(1, 9, vec![7u8]);
                0
            } else {
                let req = comm.irecv::<u8>(0, 9);
                req.wait(comm)[0]
            }
        });
        assert_eq!(report.results[1], 7);
    }

    #[test]
    fn wait_any_returns_each_once() {
        let p = 4;
        let report = World::new(p).net(NetModel::zero()).run(move |comm| {
            if comm.rank() == 0 {
                let mut reqs: Vec<_> = (1..p).map(|src| comm.irecv::<u64>(src, 1)).collect();
                let mut got = Vec::new();
                while let Some((_, data)) = wait_any(comm, &mut reqs) {
                    got.push(data[0]);
                }
                got.sort_unstable();
                got
            } else {
                comm.isend(0, 1, vec![comm.rank() as u64 * 100]);
                Vec::new()
            }
        });
        assert_eq!(report.results[0], vec![100, 200, 300]);
    }

    #[test]
    fn request_metadata_accessors() {
        World::new(2).net(NetModel::zero()).run(|comm| {
            if comm.rank() == 1 {
                let req = comm.irecv::<u8>(0, 42);
                assert_eq!(req.source(), 0);
                assert_eq!(req.tag(), 42);
                comm.send_val(0, 5, 1u8); // unblock rank 0's recv below
                drop(req); // un-waited requests may be dropped
            } else {
                let _: u8 = comm.recv_val(1, 5);
            }
        });
    }
}
