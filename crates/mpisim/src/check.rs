//! Happens-before determinism/race checking for simulated MPI programs.
//!
//! When a world is built with [`crate::World::check`] (or the `check` cargo
//! feature, which flips the default on), every rank carries a vector clock:
//! a send increments the sender's component and stamps the envelope with the
//! sender's clock; a receive joins the stamp into the receiver's clock. Since
//! collectives are built on the same send/receive primitives, barrier and
//! reduction edges fall out for free. Like the faults layer, the checker is
//! a pure observer — a world built without it is bit-identical, and the only
//! cost when disabled is one branch per hook.
//!
//! Three classes of MPI-semantics races are flagged at world exit (raising
//! [`RaceError`] from [`crate::World::run`], the same way the deadlock
//! detector raises [`crate::DeadlockError`]):
//!
//! * **wildcard-receive nondeterminism** — an any-source receive completed
//!   while a message from a *different* source was also in flight (or a
//!   later send raced with the completed receive): which message matches is
//!   scheduling-dependent, so results can differ run to run;
//! * **tag reuse in flight** — an any-source receive found two or more
//!   in-flight messages from the *same* source on one `(ctx, tag)`: the
//!   receiver cannot attribute replies to operations by tag alone;
//! * **shared-state races** — code that touches rank-shared host state can
//!   declare it via [`crate::Comm::check_shared_read`] /
//!   [`crate::Comm::check_shared_write`]; accesses by two ranks with no
//!   happens-before edge between them are flagged (write-write and
//!   read-write).
//!
//! Reports name world ranks, decoded tags (collective tags are decoded into
//! operation/round like the deadlock report), and the last phase each
//! involved rank entered via [`crate::Comm::trace_phase`].

use crate::comm::describe_tag;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;

/// Panic payload raised by [`crate::World::run`] when the happens-before
/// checker recorded findings. Carries a human-readable report.
#[derive(Debug, Clone)]
pub struct RaceError {
    /// Multi-line diagnostic report, one numbered finding per paragraph.
    pub report: String,
}

impl fmt::Display for RaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "happens-before checker found races:\n{}", self.report)
    }
}

impl std::error::Error for RaceError {}

/// Sender-side vector-clock stamp carried by an envelope when checking is
/// on. `None` (the always-case when checking is off) costs nothing.
pub(crate) type Stamp = Box<[u64]>;

/// A message sent but not yet received, from the checker's point of view.
struct InFlight {
    src: usize,
    phase: String,
}

/// A completed any-source receive, kept so later sends on the same
/// `(dst, ctx, tag)` key can be checked for racing with it.
struct WildRecv {
    matched_src: usize,
    /// Receiver's vector clock right after the receive completed.
    vc_after: Vec<u64>,
    phase: String,
}

/// Last-access bookkeeping for one declared shared-state key.
#[derive(Default)]
struct SharedState {
    /// `(writer_rank, writer_vc, phase)` of the most recent write.
    last_write: Option<(usize, Vec<u64>, String)>,
    /// Per-rank vector clocks of reads since the last write.
    reads: HashMap<usize, Vec<u64>>,
}

struct CheckState {
    /// Per-world-rank vector clocks.
    vc: Vec<Vec<u64>>,
    /// Last phase each rank entered via `trace_phase`.
    phase: Vec<String>,
    /// In-flight messages keyed by `(dst_world, ctx, tag)`, FIFO per key.
    inflight: HashMap<(usize, u64, u64), Vec<InFlight>>,
    /// Completed any-source receives keyed by `(dst_world, ctx, tag)`.
    wild_hist: HashMap<(usize, u64, u64), Vec<WildRecv>>,
    /// Declared shared-state keys.
    shared: HashMap<String, SharedState>,
    /// Deduplicated findings, in discovery order.
    findings: Vec<String>,
    /// Dedup keys of findings already recorded.
    seen: std::collections::HashSet<String>,
}

/// Cap on recorded any-source receives per `(dst, ctx, tag)` key and on
/// total findings: diagnostics stay bounded on long runs.
const WILD_HIST_CAP: usize = 128;
const FINDINGS_CAP: usize = 64;

/// The world's happens-before tracker. One branch per hook when disabled.
pub(crate) struct Checker {
    state: Option<Mutex<CheckState>>,
}

fn vc_leq(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).all(|(x, y)| x <= y)
}

impl Checker {
    pub fn new(world_size: usize, enabled: bool) -> Self {
        Self {
            state: enabled.then(|| {
                Mutex::new(CheckState {
                    vc: vec![vec![0; world_size]; world_size],
                    phase: vec![String::new(); world_size],
                    inflight: HashMap::new(),
                    wild_hist: HashMap::new(),
                    shared: HashMap::new(),
                    findings: Vec::new(),
                    seen: std::collections::HashSet::new(),
                })
            }),
        }
    }

    /// Record a phase change on `rank` (mirrors the deadlock watch).
    pub fn on_phase(&self, rank: usize, name: &str) {
        let Some(state) = &self.state else { return };
        let mut s = state.lock();
        s.phase[rank] = name.to_string();
    }

    /// Record a send from `src` to `dst` on `(ctx, tag)`. Returns the stamp
    /// to attach to the envelope (`None` when checking is off).
    pub fn on_send(&self, src: usize, dst: usize, ctx: u64, tag: u64) -> Option<Stamp> {
        let state = self.state.as_ref()?;
        let mut s = state.lock();
        s.vc[src][src] += 1;
        let stamp: Stamp = s.vc[src].clone().into_boxed_slice();

        // Retroactive wildcard check: if an any-source receive already
        // completed on this key matching a different source, and this send
        // is not causally after that completion, the two were racing — this
        // message could have been the one matched.
        let key = (dst, ctx, tag);
        let racing = s.wild_hist.get(&key).and_then(|hist| {
            hist.iter()
                .find(|w| w.matched_src != src && !vc_leq(&w.vc_after, &stamp))
                .map(|w| {
                    format!(
                        "wildcard-receive nondeterminism: rank {dst} completed an any-source \
                         receive on ctx {ctx}, {} (matched rank {}, phase {}), while a send of \
                         the same tag from rank {src} (phase {}) was not ordered after it — \
                         which message matches is scheduling-dependent",
                        describe_tag(tag),
                        w.matched_src,
                        fmt_phase(&w.phase),
                        fmt_phase(&s.phase[src]),
                    )
                })
        });
        if let Some(msg) = racing {
            s.record(format!("wild:{dst}:{ctx}:{tag}"), msg);
        }

        let phase = s.phase[src].clone();
        s.inflight
            .entry(key)
            .or_default()
            .push(InFlight { src, phase });
        Some(stamp)
    }

    /// Record a completed receive on `dst` of a message from `src` with the
    /// given stamp. `wildcard` marks any-source receives; receives whose
    /// matching is order-insensitive by protocol (chunks keyed by source
    /// with a duplicate check, as in the async alltoallv) pass `false`.
    pub fn on_recv(
        &self,
        dst: usize,
        ctx: u64,
        tag: u64,
        src: usize,
        stamp: Option<&Stamp>,
        wildcard: bool,
    ) {
        let Some(state) = &self.state else { return };
        let mut s = state.lock();
        let key = (dst, ctx, tag);

        if wildcard {
            let mut found: Vec<(String, String)> = Vec::new();
            if let Some(entries) = s.inflight.get(&key) {
                // Another in-flight message from a different source could
                // have matched this any-source receive instead.
                if let Some(other) = entries.iter().find(|e| e.src != src) {
                    found.push((
                        format!("wild:{dst}:{ctx}:{tag}"),
                        format!(
                            "wildcard-receive nondeterminism: rank {dst} matched an any-source \
                             receive on ctx {ctx}, {} to rank {src}, but a message from rank {} \
                             (phase {}) was in flight on the same tag — which message matches \
                             is scheduling-dependent",
                            describe_tag(tag),
                            other.src,
                            fmt_phase(&other.phase),
                        ),
                    ));
                }
                // Two or more in-flight messages from the SAME source are
                // delivered in order (non-overtaking), but an any-source
                // receiver cannot attribute them to operations by tag alone.
                if entries.iter().filter(|e| e.src == src).count() >= 2 {
                    found.push((
                        format!("reuse:{dst}:{ctx}:{tag}:{src}"),
                        format!(
                            "tag reuse in flight: rank {src} had multiple messages in flight \
                             to rank {dst} on ctx {ctx}, {} while rank {dst} received with \
                             any-source matching (phase {}) — replies cannot be attributed to \
                             operations",
                            describe_tag(tag),
                            fmt_phase(&s.phase[dst]),
                        ),
                    ));
                }
            }
            for (dedup, msg) in found {
                s.record(dedup, msg);
            }
        }

        // Drain the oldest matching in-flight entry (FIFO per (key, src),
        // mirroring the mailbox's non-overtaking guarantee).
        if let Some(entries) = s.inflight.get_mut(&key) {
            if let Some(i) = entries.iter().position(|e| e.src == src) {
                entries.remove(i);
            }
            if entries.is_empty() {
                s.inflight.remove(&key);
            }
        }

        // Join the sender's stamp, then tick the receiver.
        if let Some(stamp) = stamp {
            for (mine, theirs) in s.vc[dst].iter_mut().zip(stamp.iter()) {
                *mine = (*mine).max(*theirs);
            }
        }
        s.vc[dst][dst] += 1;

        if wildcard {
            let vc_after = s.vc[dst].clone();
            let phase = s.phase[dst].clone();
            let hist = s.wild_hist.entry(key).or_default();
            if hist.len() < WILD_HIST_CAP {
                hist.push(WildRecv {
                    matched_src: src,
                    vc_after,
                    phase,
                });
            }
        }
    }

    /// Record a declared read of shared key `name` by `rank`. The access is
    /// itself an event (the rank's clock ticks), so two accesses with no
    /// message path between them are never vector-ordered.
    pub fn on_shared_read(&self, rank: usize, name: &str) {
        let Some(state) = &self.state else { return };
        let mut s = state.lock();
        s.vc[rank][rank] += 1;
        let my_vc = s.vc[rank].clone();
        let my_phase = s.phase[rank].clone();
        let entry = s.shared.entry(name.to_string()).or_default();
        let mut conflict = None;
        if let Some((w_rank, w_vc, w_phase)) = &entry.last_write {
            if *w_rank != rank && !vc_leq(w_vc, &my_vc) {
                conflict = Some(format!(
                    "shared-state race on \"{name}\": rank {rank} read (phase {}) with no \
                     happens-before edge from rank {w_rank}'s write (phase {}) — add a \
                     message or collective between them",
                    fmt_phase(&my_phase),
                    fmt_phase(w_phase),
                ));
            }
        }
        entry.reads.insert(rank, my_vc);
        if let Some(msg) = conflict {
            s.record(format!("shared-rw:{name}"), msg);
        }
    }

    /// Record a declared write of shared key `name` by `rank`. Ticks the
    /// rank's clock like [`Checker::on_shared_read`].
    pub fn on_shared_write(&self, rank: usize, name: &str) {
        let Some(state) = &self.state else { return };
        let mut s = state.lock();
        s.vc[rank][rank] += 1;
        let my_vc = s.vc[rank].clone();
        let my_phase = s.phase[rank].clone();
        let entry = s.shared.entry(name.to_string()).or_default();
        let mut conflicts: Vec<String> = Vec::new();
        if let Some((w_rank, w_vc, w_phase)) = &entry.last_write {
            if *w_rank != rank && !vc_leq(w_vc, &my_vc) {
                conflicts.push(format!(
                    "shared-state race on \"{name}\": ranks {w_rank} and {rank} both wrote \
                     (phases {} and {}) with no happens-before edge between the writes — \
                     the final value is scheduling-dependent",
                    fmt_phase(w_phase),
                    fmt_phase(&my_phase),
                ));
            }
        }
        for (r_rank, r_vc) in &entry.reads {
            if *r_rank != rank && !vc_leq(r_vc, &my_vc) {
                conflicts.push(format!(
                    "shared-state race on \"{name}\": rank {rank} wrote (phase {}) with no \
                     happens-before edge from rank {r_rank}'s read — the read may see \
                     either value",
                    fmt_phase(&my_phase),
                ));
            }
        }
        entry.last_write = Some((rank, my_vc, my_phase));
        entry.reads.clear();
        for msg in conflicts {
            s.record(format!("shared-ww:{name}"), msg);
        }
    }

    /// Take the final report, if any findings were recorded. Called once by
    /// the runtime after all ranks joined cleanly.
    pub fn take_report(&self) -> Option<String> {
        let state = self.state.as_ref()?;
        let s = state.lock();
        if s.findings.is_empty() {
            return None;
        }
        let mut rep = format!("{} finding(s):\n", s.findings.len());
        for (i, f) in s.findings.iter().enumerate() {
            rep.push_str(&format!("  {}. {f}\n", i + 1));
        }
        Some(rep)
    }
}

impl CheckState {
    fn record(&mut self, dedup: String, msg: String) {
        if self.findings.len() >= FINDINGS_CAP || !self.seen.insert(dedup) {
            return;
        }
        self.findings.push(msg);
    }
}

fn fmt_phase(phase: &str) -> &str {
    if phase.is_empty() {
        "<none>"
    } else {
        phase
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_checker_is_inert() {
        let c = Checker::new(4, false);
        assert!(c.on_send(0, 1, 0, 5).is_none());
        c.on_recv(1, 0, 5, 0, None, true);
        c.on_shared_write(0, "x");
        assert!(c.take_report().is_none());
    }

    #[test]
    fn exact_receives_are_never_racy() {
        let c = Checker::new(2, true);
        let s = c.on_send(0, 1, 0, 5);
        c.on_recv(1, 0, 5, 0, s.as_ref(), false);
        assert!(c.take_report().is_none());
    }

    #[test]
    fn concurrent_wildcard_alternatives_are_flagged() {
        let c = Checker::new(3, true);
        let s1 = c.on_send(1, 0, 0, 5);
        let _s2 = c.on_send(2, 0, 0, 5);
        // Rank 0 matches rank 1's message while rank 2's is also in flight.
        c.on_recv(0, 0, 5, 1, s1.as_ref(), true);
        let rep = c.take_report().expect("race must be flagged");
        assert!(rep.contains("wildcard-receive nondeterminism"), "{rep}");
    }

    #[test]
    fn racing_send_after_wildcard_completion_is_flagged() {
        let c = Checker::new(3, true);
        let s1 = c.on_send(1, 0, 0, 5);
        c.on_recv(0, 0, 5, 1, s1.as_ref(), true);
        // Rank 2 sends the same tag with no knowledge of rank 0's receive.
        let _s2 = c.on_send(2, 0, 0, 5);
        let rep = c.take_report().expect("race must be flagged");
        assert!(rep.contains("wildcard-receive nondeterminism"), "{rep}");
    }

    #[test]
    fn causally_ordered_wildcards_are_clean() {
        let c = Checker::new(3, true);
        const DATA: u64 = 5;
        const GO: u64 = 6;
        let s1 = c.on_send(1, 0, 0, DATA);
        c.on_recv(0, 0, DATA, 1, s1.as_ref(), true);
        // Rank 0 tells rank 2 the first receive completed; rank 2's later
        // send on the same tag is then causally ordered after it.
        let go = c.on_send(0, 2, 0, GO);
        c.on_recv(2, 0, GO, 0, go.as_ref(), false);
        let s2 = c.on_send(2, 0, 0, DATA);
        c.on_recv(0, 0, DATA, 2, s2.as_ref(), true);
        assert!(c.take_report().is_none());
    }

    #[test]
    fn same_source_tag_reuse_under_wildcard_is_flagged() {
        let c = Checker::new(2, true);
        let s1 = c.on_send(1, 0, 0, 9);
        let _s2 = c.on_send(1, 0, 0, 9);
        c.on_recv(0, 0, 9, 1, s1.as_ref(), true);
        let rep = c.take_report().expect("tag reuse must be flagged");
        assert!(rep.contains("tag reuse in flight"), "{rep}");
    }

    #[test]
    fn unsynchronized_shared_writes_are_flagged() {
        let c = Checker::new(2, true);
        c.on_shared_write(0, "splitters");
        c.on_shared_write(1, "splitters");
        let rep = c.take_report().expect("write-write race must be flagged");
        assert!(rep.contains("shared-state race"), "{rep}");
    }

    #[test]
    fn message_ordered_shared_writes_are_clean() {
        let c = Checker::new(2, true);
        c.on_shared_write(0, "splitters");
        let s = c.on_send(0, 1, 0, 3);
        c.on_recv(1, 0, 3, 0, s.as_ref(), false);
        c.on_shared_write(1, "splitters");
        assert!(c.take_report().is_none());
    }

    #[test]
    fn unsynchronized_read_of_write_is_flagged() {
        let c = Checker::new(2, true);
        c.on_shared_write(0, "histogram");
        c.on_shared_read(1, "histogram");
        let rep = c.take_report().expect("read-write race must be flagged");
        assert!(rep.contains("shared-state race"), "{rep}");
    }

    #[test]
    fn findings_are_deduplicated() {
        let c = Checker::new(3, true);
        for _ in 0..5 {
            let s1 = c.on_send(1, 0, 0, 5);
            let _s2 = c.on_send(2, 0, 0, 5);
            c.on_recv(0, 0, 5, 1, s1.as_ref(), true);
            c.on_recv(0, 0, 5, 2, None, true);
        }
        let rep = c.take_report().expect("race must be flagged");
        assert_eq!(rep.matches("wildcard-receive").count(), 1, "{rep}");
    }
}
