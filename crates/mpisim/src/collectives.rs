//! Collective operations over a [`Comm`].
//!
//! Implemented on top of buffered point-to-point sends, with per-operation
//! tag isolation so that interleaved collectives on the same communicator
//! never cross-match. Reductions fold in rank order, so results are
//! deterministic even for non-commutative closures.
//!
//! When telemetry is enabled, each traffic-generating primitive (barrier,
//! bcast, gatherv, alltoall, alltoallv, scatterv) bumps a `coll.<name>`
//! counter on entry; composed collectives (gather, allreduce, scans, …)
//! show up as the primitives they delegate to.

use crate::comm::Comm;

impl Comm {
    /// Synchronize all ranks (dissemination barrier, ⌈log₂ p⌉ rounds).
    /// Also synchronizes virtual clocks: after the barrier every clock is at
    /// least the maximum pre-barrier clock plus the modelled barrier cost.
    pub fn barrier(&self) {
        self.count("coll.barrier", 1);
        let p = self.size();
        if p == 1 {
            return;
        }
        let base = self.next_coll_tag();
        let r = self.rank();
        let mut k = 0u32;
        while (1usize << k) < p {
            let d = 1usize << k;
            let dst = (r + d) % p;
            let src = (r + p - d) % p;
            self.send_vec_raw::<u8>(dst, base + k as u64, Vec::new());
            let _ = self.recv_vec_raw::<u8>(src, base + k as u64);
            k += 1;
        }
    }

    /// Broadcast from `root` (binomial tree). `data` must be `Some` on the
    /// root and is ignored elsewhere; every rank returns the payload.
    pub fn bcast<T: Clone + Send + 'static>(&self, root: usize, data: Option<Vec<T>>) -> Vec<T> {
        self.count("coll.bcast", 1);
        let p = self.size();
        let tag = self.next_coll_tag();
        if p == 1 {
            return data.expect("root must supply data");
        }
        let vr = (self.rank() + p - root) % p; // virtual rank, root = 0
        let mut buf: Option<Vec<T>> = if vr == 0 {
            Some(data.expect("root must supply data"))
        } else {
            None
        };
        // Receive once from the appropriate parent, then forward.
        let rounds = (usize::BITS - (p - 1).leading_zeros()) as usize;
        for k in 0..rounds {
            let d = 1usize << k;
            if buf.is_none() && vr >= d && vr < 2 * d {
                let parent_vr = vr - d;
                let parent = (parent_vr + root) % p;
                buf = Some(self.recv_vec_raw::<T>(parent, tag + k as u64));
            } else if buf.is_some() && vr < d {
                let child_vr = vr + d;
                if child_vr < p {
                    let child = (child_vr + root) % p;
                    self.send_slice_raw(child, tag + k as u64, buf.as_ref().expect("buffered"));
                }
            }
        }
        buf.expect("broadcast reached every rank")
    }

    /// Gather variable-length contributions to `root`. Root returns one
    /// vector per rank (in rank order); other ranks return `None`.
    pub fn gatherv<T: Clone + Send + 'static>(
        &self,
        root: usize,
        data: &[T],
    ) -> Option<Vec<Vec<T>>> {
        self.count("coll.gatherv", 1);
        let p = self.size();
        let tag = self.next_coll_tag();
        if self.rank() == root {
            let mut out: Vec<Vec<T>> = Vec::with_capacity(p);
            for src in 0..p {
                if src == root {
                    out.push(data.to_vec());
                } else {
                    out.push(self.recv_vec_raw::<T>(src, tag));
                }
            }
            Some(out)
        } else {
            self.send_slice_raw(root, tag, data);
            None
        }
    }

    /// Gather equal-length contributions to `root`, concatenated in rank
    /// order. Other ranks return `None`.
    pub fn gather<T: Clone + Send + 'static>(&self, root: usize, data: &[T]) -> Option<Vec<T>> {
        self.gatherv(root, data)
            .map(|parts| parts.into_iter().flatten().collect())
    }

    /// All ranks obtain the concatenation (rank order) of every rank's
    /// contribution. Contributions may differ in length; returns the flat
    /// data and per-rank counts.
    pub fn allgatherv<T: Clone + Send + 'static>(&self, data: &[T]) -> (Vec<T>, Vec<usize>) {
        let root = 0;
        let parts = self.gatherv(root, data);
        let (flat, counts) = if self.rank() == root {
            let parts = parts.expect("root has parts");
            let counts: Vec<usize> = parts.iter().map(Vec::len).collect();
            (parts.into_iter().flatten().collect::<Vec<T>>(), counts)
        } else {
            (Vec::new(), Vec::new())
        };
        let counts = self.bcast(
            root,
            if self.rank() == root {
                Some(counts)
            } else {
                None
            },
        );
        let flat = self.bcast(
            root,
            if self.rank() == root {
                Some(flat)
            } else {
                None
            },
        );
        (flat, counts)
    }

    /// All ranks obtain the concatenation of equal-length contributions.
    pub fn allgather<T: Clone + Send + 'static>(&self, data: &[T]) -> Vec<T> {
        self.allgatherv(data).0
    }

    /// Personalized all-to-all: `data` holds exactly one item per rank;
    /// returns the item received from each rank, in rank order.
    pub fn alltoall<T: Clone + Send + 'static>(&self, data: &[T]) -> Vec<T> {
        self.count("coll.alltoall", 1);
        let p = self.size();
        assert_eq!(data.len(), p, "alltoall requires one item per rank");
        let tag = self.next_coll_tag();
        let me = self.rank();
        for (dst, item) in data.iter().enumerate() {
            if dst != me {
                self.send_val_raw(dst, tag, item.clone());
            }
        }
        let mut out: Vec<T> = Vec::with_capacity(p);
        for src in 0..p {
            if src == me {
                out.push(data[me].clone());
            } else {
                out.push(self.recv_val_raw::<T>(src, tag));
            }
        }
        out
    }

    /// Variable all-to-all (`MPI_Alltoallv`). `data` is partitioned by
    /// `send_counts` (one contiguous run per destination rank, in rank
    /// order). Returns the received data concatenated in source-rank order
    /// plus the per-source counts.
    pub fn alltoallv<T: Clone + Send + 'static>(
        &self,
        data: &[T],
        send_counts: &[usize],
    ) -> (Vec<T>, Vec<usize>) {
        let p = self.size();
        assert_eq!(send_counts.len(), p, "one send count per rank");
        let total: usize = send_counts.iter().sum();
        assert_eq!(total, data.len(), "send counts must cover the data");
        let recv_counts = self.alltoall(send_counts);
        let out = self.alltoallv_given_counts(data, send_counts, &recv_counts);
        (out, recv_counts)
    }

    /// [`alltoallv`](Self::alltoallv) when the receive counts are already
    /// known (e.g. from the partition phase's count exchange), avoiding a
    /// redundant `alltoall` of counts.
    pub fn alltoallv_given_counts<T: Clone + Send + 'static>(
        &self,
        data: &[T],
        send_counts: &[usize],
        recv_counts: &[usize],
    ) -> Vec<T> {
        self.count("coll.alltoallv", 1);
        let p = self.size();
        assert_eq!(send_counts.len(), p, "one send count per rank");
        assert_eq!(recv_counts.len(), p, "one recv count per rank");
        let total: usize = send_counts.iter().sum();
        assert_eq!(total, data.len(), "send counts must cover the data");
        let tag = self.next_coll_tag();
        let me = self.rank();

        let mut offsets = Vec::with_capacity(p + 1);
        offsets.push(0usize);
        for &c in send_counts {
            offsets.push(offsets.last().copied().expect("non-empty") + c);
        }
        // Staggered send order (start at me+1, wrap) as real MPI all-to-all
        // implementations do: receiver r then sees its chunks injected at
        // positions (r - sender) mod p of each sender's loop, spreading
        // arrivals instead of synchronizing them into a hotspot.
        for i in 1..p {
            let dst = (me + i) % p;
            if send_counts[dst] > 0 {
                self.send_slice_raw(dst, tag, &data[offsets[dst]..offsets[dst + 1]]);
            }
        }
        let mut out: Vec<T> = Vec::with_capacity(recv_counts.iter().sum());
        for (src, &rc) in recv_counts.iter().enumerate() {
            if src == me {
                out.extend_from_slice(&data[offsets[me]..offsets[me + 1]]);
            } else if rc > 0 {
                let chunk = self.recv_vec_raw::<T>(src, tag);
                assert_eq!(chunk.len(), rc, "alltoallv count mismatch from {src}");
                out.extend(chunk);
            }
        }
        out
    }

    /// Reduce to `root` with `op`, folding contributions in rank order.
    pub fn reduce<T: Clone + Send + 'static>(
        &self,
        root: usize,
        value: T,
        op: impl Fn(T, T) -> T,
    ) -> Option<T> {
        self.gatherv(root, std::slice::from_ref(&value))
            .map(|parts| {
                parts
                    .into_iter()
                    .flatten()
                    .reduce(op)
                    .expect("at least one contribution")
            })
    }

    /// Allreduce with `op` (deterministic rank-order fold).
    pub fn allreduce<T: Clone + Send + 'static>(&self, value: T, op: impl Fn(T, T) -> T) -> T {
        let root = 0;
        let reduced = self.reduce(root, value, op);
        let v = self.bcast(root, reduced.map(|r| vec![r]));
        v.into_iter().next().expect("bcast payload")
    }

    /// Exclusive prefix scan: rank r returns `op` folded over ranks `0..r`,
    /// or `None` on rank 0.
    pub fn exscan<T: Clone + Send + 'static>(&self, value: T, op: impl Fn(T, T) -> T) -> Option<T> {
        let all = self.allgather(std::slice::from_ref(&value));
        let r = self.rank();
        if r == 0 {
            None
        } else {
            all[..r].iter().cloned().reduce(op)
        }
    }

    /// Inclusive prefix scan: rank r returns `op` folded over ranks `0..=r`.
    pub fn scan<T: Clone + Send + 'static>(&self, value: T, op: impl Fn(T, T) -> T) -> T {
        let all = self.allgather(std::slice::from_ref(&value));
        all[..=self.rank()]
            .iter()
            .cloned()
            .reduce(op)
            .expect("at least own contribution")
    }

    /// Scatter variable-length chunks from `root`: the root supplies one
    /// vector per rank (in rank order) and every rank returns its chunk.
    pub fn scatterv<T: Clone + Send + 'static>(
        &self,
        root: usize,
        chunks: Option<Vec<Vec<T>>>,
    ) -> Vec<T> {
        self.count("coll.scatterv", 1);
        let p = self.size();
        let tag = self.next_coll_tag();
        if self.rank() == root {
            let chunks = chunks.expect("root must supply chunks");
            assert_eq!(chunks.len(), p, "one chunk per rank");
            let mut mine = Vec::new();
            for (dst, chunk) in chunks.into_iter().enumerate() {
                if dst == root {
                    mine = chunk;
                } else {
                    self.send_vec_raw(dst, tag, chunk);
                }
            }
            mine
        } else {
            self.recv_vec_raw(root, tag)
        }
    }

    /// Scatter equal-length chunks of `data` from `root` (`MPI_Scatter`):
    /// rank i receives `data[i·len .. (i+1)·len]` where `len = |data|/p`.
    pub fn scatter<T: Clone + Send + 'static>(&self, root: usize, data: Option<&[T]>) -> Vec<T> {
        let p = self.size();
        let chunks = if self.rank() == root {
            let data = data.expect("root must supply data");
            assert_eq!(data.len() % p, 0, "scatter requires p equal chunks");
            let len = data.len() / p;
            Some(data.chunks(len).map(<[T]>::to_vec).collect())
        } else {
            None
        };
        self.scatterv(root, chunks)
    }

    /// Reduce-scatter: element-wise reduce a per-rank vector of length `p`
    /// with `op`, then rank r returns element r of the reduction
    /// (`MPI_Reduce_scatter_block` with one element per rank).
    pub fn reduce_scatter<T: Clone + Send + 'static>(
        &self,
        contributions: &[T],
        op: impl Fn(T, T) -> T,
    ) -> T {
        let p = self.size();
        assert_eq!(contributions.len(), p, "one contribution per rank");
        // Each rank sends element j to rank j (an all-to-all), then folds
        // what it received in source-rank order.
        let received = self.alltoall(contributions);
        received.into_iter().reduce(op).expect("p >= 1")
    }
}
