//! Shared state of one simulated world: mailboxes, topology, network model,
//! memory tracker, context-id registry, and abort flag.

use crate::check::Checker;
use crate::faults::{FaultSpec, Faults};
use crate::mailbox::Mailbox;
use crate::memory::MemoryTracker;
use crate::netmodel::NetModel;
use crate::topology::Topology;
use crate::trace::Tracer;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;
use telemetry::Recorder;

/// What a blocked rank is waiting for (deadlock diagnostics).
#[derive(Debug, Clone)]
pub(crate) struct WaitDesc {
    pub ctx: u64,
    /// `None` = any source; `Some(w)` = world rank w (or several, for
    /// multi-request waits — the first is recorded).
    pub src: Option<usize>,
    pub tag: u64,
}

/// Collective-timeout detector state. Tracks global delivery progress and
/// how many ranks are blocked in a receive; when every rank is blocked and
/// no envelope moves for a full timeout window, the world is provably
/// deadlocked and a diagnostic report is raised instead of hanging forever.
pub(crate) struct DeadlockWatch {
    /// Wall-clock window; `None` disables the detector entirely.
    pub timeout: Option<Duration>,
    /// Bumped on every mailbox delivery and successful take.
    pub progress: AtomicU64,
    /// Ranks currently blocked in a receive.
    pub blocked: AtomicUsize,
    /// What each blocked rank is waiting for.
    pub waits: Vec<Mutex<Option<WaitDesc>>>,
    /// Last phase name each rank entered via `trace_phase`.
    pub last_phase: Vec<Mutex<String>>,
    /// The report, filled once by whichever rank detects the deadlock.
    pub report: Mutex<Option<String>>,
}

impl DeadlockWatch {
    fn new(size: usize, timeout: Option<Duration>) -> Self {
        let tracked = if timeout.is_some() { size } else { 0 };
        Self {
            timeout,
            progress: AtomicU64::new(0),
            blocked: AtomicUsize::new(0),
            waits: (0..tracked).map(|_| Mutex::new(None)).collect(),
            last_phase: (0..tracked).map(|_| Mutex::new(String::new())).collect(),
            report: Mutex::new(None),
        }
    }
}

/// Panic payload raised when the collective-timeout detector proves a
/// deadlock. Carries a human-readable report naming the stuck ranks, what
/// each is waiting for, its pending mailbox contents, and the last phase
/// it completed.
#[derive(Debug, Clone)]
pub struct DeadlockError {
    /// Multi-line diagnostic report.
    pub report: String,
}

impl fmt::Display for DeadlockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "simulated deadlock detected:\n{}", self.report)
    }
}

impl std::error::Error for DeadlockError {}

/// Statistics accumulated over a run (whole world, all communicators).
#[derive(Debug, Default)]
pub struct NetStats {
    messages: AtomicU64,
    bytes: AtomicU64,
}

impl NetStats {
    pub(crate) fn record(&self, bytes: usize) {
        self.messages.fetch_add(1, Ordering::SeqCst);
        self.bytes.fetch_add(bytes as u64, Ordering::SeqCst);
    }

    /// Total point-to-point messages sent (self-sends included).
    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::SeqCst)
    }

    /// Total payload bytes sent.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::SeqCst)
    }
}

/// Shared immutable/concurrent state for all ranks of a world.
pub struct Universe {
    pub(crate) topology: Topology,
    pub(crate) net: NetModel,
    pub(crate) memory: MemoryTracker,
    pub(crate) mailboxes: Vec<Mailbox>,
    pub(crate) aborted: AtomicBool,
    pub(crate) stats: NetStats,
    pub(crate) tracer: Tracer,
    pub(crate) recorder: Recorder,
    pub(crate) faults: Faults,
    pub(crate) deadlock: DeadlockWatch,
    pub(crate) checker: Checker,
    /// Deterministic context-id registry for communicator splits: all ranks
    /// performing the same (parent ctx, split sequence number, color) split
    /// must agree on the child context id, regardless of arrival order.
    contexts: Mutex<HashMap<(u64, u64, i64), u64>>,
    next_ctx: AtomicU64,
}

impl Universe {
    // Crate-internal constructor called from exactly one place
    // (`World::run`), which forwards the builder's knobs one-to-one.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        topology: Topology,
        net: NetModel,
        memory_budget: Option<usize>,
        trace: bool,
        telemetry: bool,
        faults: Option<FaultSpec>,
        collective_timeout: Option<Duration>,
        check: bool,
    ) -> Self {
        let size = topology.world_size();
        Self {
            memory: MemoryTracker::new(size, memory_budget),
            mailboxes: (0..size).map(|_| Mailbox::default()).collect(),
            recorder: Recorder::new(topology.node_map(), telemetry),
            faults: Faults::new(size, faults),
            deadlock: DeadlockWatch::new(size, collective_timeout),
            checker: Checker::new(size, check),
            topology,
            net,
            aborted: AtomicBool::new(false),
            stats: NetStats::default(),
            tracer: Tracer::new(size, trace),
            contexts: Mutex::new(HashMap::new()),
            // ctx 0 is the world communicator.
            next_ctx: AtomicU64::new(1),
        }
    }

    /// The installed fault policy.
    pub(crate) fn faults(&self) -> &Faults {
        &self.faults
    }

    /// The happens-before checker (inert unless the world enabled it).
    pub(crate) fn checker(&self) -> &Checker {
        &self.checker
    }

    /// Count a rank whose closure returned as permanently blocked: it will
    /// never take another envelope, so ranks still waiting on it deadlock.
    pub(crate) fn deadlock_mark_finished(&self) {
        if self.deadlock.timeout.is_some() {
            self.deadlock.blocked.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Look up (or allocate) the context id for a split of `parent_ctx`
    /// identified by `(split_seq, color)`. Deterministic across ranks: the
    /// first rank to arrive allocates, later ranks read the same id.
    pub(crate) fn context_for_split(&self, parent_ctx: u64, split_seq: u64, color: i64) -> u64 {
        let mut map = self.contexts.lock();
        *map.entry((parent_ctx, split_seq, color))
            .or_insert_with(|| self.next_ctx.fetch_add(1, Ordering::SeqCst))
    }

    /// Mark the world as aborted and wake every blocked receiver.
    pub(crate) fn abort(&self) {
        self.aborted.store(true, Ordering::SeqCst);
        for mb in &self.mailboxes {
            mb.interrupt();
        }
    }

    /// Whether a rank has panicked.
    pub fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::SeqCst)
    }

    /// The world topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The network cost model.
    pub fn net(&self) -> &NetModel {
        &self.net
    }

    /// The per-rank memory tracker.
    pub fn memory(&self) -> &MemoryTracker {
        &self.memory
    }

    /// Run statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// The communication tracer (no-op unless enabled at world build).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The telemetry recorder (no-op unless enabled at world build).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uni(p: usize) -> Universe {
        Universe::new(
            Topology::new(p, 4),
            NetModel::zero(),
            None,
            false,
            false,
            None,
            None,
            false,
        )
    }

    #[test]
    fn context_registry_is_deterministic() {
        let u = uni(4);
        let a = u.context_for_split(0, 0, 7);
        let b = u.context_for_split(0, 0, 7);
        assert_eq!(a, b);
        let c = u.context_for_split(0, 0, 8);
        assert_ne!(a, c);
        let d = u.context_for_split(0, 1, 7);
        assert_ne!(a, d);
        // world ctx 0 is never handed out
        assert_ne!(a, 0);
        assert_ne!(c, 0);
        assert_ne!(d, 0);
    }

    #[test]
    fn abort_sets_flag() {
        let u = uni(2);
        assert!(!u.is_aborted());
        u.abort();
        assert!(u.is_aborted());
    }

    #[test]
    fn stats_accumulate() {
        let u = uni(2);
        u.stats.record(100);
        u.stats.record(50);
        assert_eq!(u.stats().messages(), 2);
        assert_eq!(u.stats().bytes(), 150);
    }
}
