//! Per-rank simulated memory budgets.
//!
//! Edison nodes hold 64 GB for 24 ranks (~2.7 GB/rank). The paper's key
//! qualitative result on skewed data is that HykSort's histogram
//! partitioning concentrates all duplicates of a popular key on one rank,
//! which then exceeds its memory and crashes (RDFA reported as ∞ in
//! Tables 3 and 4), while SDS-Sort's skew-aware partition keeps every rank
//! within `O(4N/p)`. [`MemoryTracker`] reproduces that failure mode: sorters
//! declare their receive-buffer allocations through
//! [`MemoryTracker::try_alloc`], and a request exceeding the per-rank budget
//! returns [`OomError`] instead of exhausting host RAM.

use crate::error::OomError;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Tracks simulated allocations for every rank in a world.
#[derive(Debug)]
pub struct MemoryTracker {
    /// Per-rank budget in bytes; `usize::MAX` means unlimited.
    budget: usize,
    used: Vec<AtomicUsize>,
    high_water: Vec<AtomicUsize>,
}

impl MemoryTracker {
    /// Create a tracker for `world_size` ranks. `budget` of `None` disables
    /// enforcement (allocations are still counted for the high-water mark).
    pub fn new(world_size: usize, budget: Option<usize>) -> Self {
        Self {
            budget: budget.unwrap_or(usize::MAX),
            used: (0..world_size).map(|_| AtomicUsize::new(0)).collect(),
            high_water: (0..world_size).map(|_| AtomicUsize::new(0)).collect(),
        }
    }

    /// Per-rank budget in bytes (`usize::MAX` if unlimited).
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Attempt to charge `bytes` to `rank`. On success the caller owns the
    /// reservation and must release it with [`free`](Self::free).
    pub fn try_alloc(&self, rank: usize, bytes: usize) -> Result<(), OomError> {
        self.try_alloc_reserved(rank, bytes, 0)
    }

    /// Like [`try_alloc`](Self::try_alloc) but with `withheld` bytes of the
    /// budget temporarily unavailable (memory-pressure fault injection). An
    /// unlimited budget is never reduced.
    pub fn try_alloc_reserved(
        &self,
        rank: usize,
        bytes: usize,
        withheld: usize,
    ) -> Result<(), OomError> {
        let effective = if self.budget == usize::MAX {
            usize::MAX
        } else {
            self.budget.saturating_sub(withheld)
        };
        let used = &self.used[rank];
        let mut cur = used.load(Ordering::SeqCst);
        loop {
            let new = cur.saturating_add(bytes);
            if new > effective {
                return Err(OomError {
                    rank,
                    requested: bytes,
                    available: effective.saturating_sub(cur),
                    budget: effective,
                });
            }
            match used.compare_exchange_weak(cur, new, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => {
                    self.high_water[rank].fetch_max(new, Ordering::SeqCst);
                    return Ok(());
                }
                Err(actual) => cur = actual,
            }
        }
    }

    /// Release a previous reservation.
    pub fn free(&self, rank: usize, bytes: usize) {
        let prev = self.used[rank].fetch_sub(bytes, Ordering::SeqCst);
        debug_assert!(
            prev >= bytes,
            "free of {bytes} B exceeds {prev} B in use on rank {rank}"
        );
    }

    /// Bytes currently charged to `rank`.
    pub fn used(&self, rank: usize) -> usize {
        self.used[rank].load(Ordering::SeqCst)
    }

    /// Highest simultaneous usage observed on `rank`.
    pub fn high_water(&self, rank: usize) -> usize {
        self.high_water[rank].load(Ordering::SeqCst)
    }

    /// Highest simultaneous usage observed on any rank.
    pub fn max_high_water(&self) -> usize {
        self.high_water
            .iter()
            .map(|h| h.load(Ordering::SeqCst))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_fails() {
        let m = MemoryTracker::new(2, None);
        assert!(m.try_alloc(0, usize::MAX / 2).is_ok());
        assert!(m.try_alloc(0, usize::MAX / 2).is_ok());
    }

    #[test]
    fn budget_enforced_per_rank() {
        let m = MemoryTracker::new(2, Some(100));
        assert!(m.try_alloc(0, 60).is_ok());
        let err = m.try_alloc(0, 60).unwrap_err();
        assert_eq!(err.rank, 0);
        assert_eq!(err.available, 40);
        // rank 1 unaffected
        assert!(m.try_alloc(1, 100).is_ok());
    }

    #[test]
    fn free_restores_capacity() {
        let m = MemoryTracker::new(1, Some(100));
        m.try_alloc(0, 100).unwrap();
        assert!(m.try_alloc(0, 1).is_err());
        m.free(0, 50);
        assert!(m.try_alloc(0, 50).is_ok());
    }

    #[test]
    fn high_water_tracks_peak() {
        let m = MemoryTracker::new(1, Some(1000));
        m.try_alloc(0, 400).unwrap();
        m.try_alloc(0, 300).unwrap();
        m.free(0, 700);
        m.try_alloc(0, 100).unwrap();
        assert_eq!(m.high_water(0), 700);
        assert_eq!(m.used(0), 100);
        assert_eq!(m.max_high_water(), 700);
    }

    #[test]
    fn withheld_budget_shrinks_headroom() {
        let m = MemoryTracker::new(1, Some(100));
        let err = m.try_alloc_reserved(0, 60, 50).unwrap_err();
        assert_eq!(err.budget, 50);
        assert_eq!(err.available, 50);
        assert!(m.try_alloc_reserved(0, 50, 50).is_ok());
        // unlimited budgets ignore withholding
        let u = MemoryTracker::new(1, None);
        assert!(u.try_alloc_reserved(0, 1 << 40, usize::MAX).is_ok());
    }

    #[test]
    fn concurrent_allocs_respect_budget() {
        use std::sync::Arc;
        let m = Arc::new(MemoryTracker::new(1, Some(10_000)));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                let mut ok = 0usize;
                for _ in 0..1000 {
                    if m.try_alloc(0, 10).is_ok() {
                        ok += 1;
                    }
                }
                ok
            }));
        }
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 1000, "exactly budget/10 allocations must succeed");
        assert_eq!(m.used(0), 10_000);
    }
}
