//! World construction and SPMD execution.
//!
//! [`World`] configures a simulated machine (rank count, cores per node,
//! network model, per-rank memory budget, compute-time scaling) and
//! [`World::run`] executes an SPMD closure on every rank, each on its own
//! OS thread, returning a [`WorldReport`] with per-rank results, the
//! virtual-time makespan, and traffic statistics.

use crate::clock::VirtualClock;
use crate::comm::Comm;
use crate::faults::FaultSpec;
use crate::netmodel::NetModel;
use crate::topology::Topology;
use crate::universe::Universe;
use std::panic::AssertUnwindSafe;
use std::rc::Rc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Builder for a simulated world.
#[derive(Debug, Clone)]
pub struct World {
    size: usize,
    cores_per_node: usize,
    node_map: Option<Vec<usize>>,
    net: NetModel,
    memory_budget: Option<usize>,
    compute_scale: f64,
    stack_size: usize,
    trace: bool,
    telemetry: bool,
    faults: Option<FaultSpec>,
    collective_timeout: Option<Duration>,
    check: bool,
}

impl World {
    /// A world of `size` ranks with default settings: 24-core nodes (Edison
    /// compute nodes have two 12-core sockets), the Edison network model, no
    /// memory budget, and unscaled wall-clock compute charging.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "world needs at least one rank");
        Self {
            size,
            cores_per_node: 24,
            node_map: None,
            net: NetModel::edison(),
            memory_budget: None,
            compute_scale: 1.0,
            stack_size: 1 << 21, // 2 MiB: worlds may have thousands of ranks
            trace: false,
            telemetry: false,
            faults: None,
            collective_timeout: None,
            check: cfg!(feature = "check"),
        }
    }

    /// Enable communication tracing (per-pair traffic matrices, see
    /// [`crate::trace`]); results land in
    /// [`WorldReport::trace_phases`].
    pub fn trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Enable telemetry recording (phase comm totals, span timelines,
    /// metrics; see the `telemetry` crate); the snapshot lands in
    /// [`WorldReport::telemetry`]. Recording is a pure observer: results
    /// and virtual clocks are identical with it on or off.
    pub fn telemetry(mut self, on: bool) -> Self {
        self.telemetry = on;
        self
    }

    /// Set simulated cores (= ranks) per node.
    pub fn cores_per_node(mut self, c: usize) -> Self {
        assert!(c > 0);
        self.cores_per_node = c;
        self
    }

    /// Place ranks on nodes via an explicit rank→node map instead of the
    /// block `rank / cores_per_node` layout (see
    /// [`Topology::with_node_map`]). The map length must equal the world
    /// size (checked in [`World::run`]).
    pub fn node_map(mut self, node_of: Vec<usize>) -> Self {
        self.node_map = Some(node_of);
        self
    }

    /// Replace the network cost model.
    pub fn net(mut self, net: NetModel) -> Self {
        self.net = net;
        self
    }

    /// Enforce a per-rank simulated memory budget in bytes.
    pub fn memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// Scale factor applied to measured compute durations (see
    /// [`VirtualClock`]). Use 0.0 to charge no measured compute at all
    /// (pure communication models).
    pub fn compute_scale(mut self, s: f64) -> Self {
        self.compute_scale = s;
        self
    }

    /// Per-rank thread stack size in bytes.
    pub fn stack_size(mut self, bytes: usize) -> Self {
        self.stack_size = bytes;
        self
    }

    /// Install a deterministic fault-injection policy (see
    /// [`crate::faults`]). Like telemetry, the layer is a pure policy
    /// object: an inert spec (or none at all) leaves every clock and result
    /// bit-identical to a world built without it.
    pub fn faults(mut self, spec: FaultSpec) -> Self {
        self.faults = Some(spec);
        self
    }

    /// Enable the collective-timeout deadlock detector: if every rank stays
    /// blocked in a receive with no message progress for `window` of wall
    /// time, the run aborts with a [`crate::DeadlockError`] naming each
    /// stuck rank, what it was waiting for, its pending mailbox contents,
    /// and the last phase it entered — instead of hanging forever on a
    /// mismatched collective or lost wakeup. Use a window comfortably above
    /// scheduling noise (hundreds of milliseconds or more).
    pub fn collective_timeout(mut self, window: Duration) -> Self {
        self.collective_timeout = Some(window);
        self
    }

    /// Enable the happens-before determinism/race checker (see
    /// [`crate::check`]): vector clocks track send/receive/collective
    /// edges, and wildcard-receive nondeterminism, tag reuse in flight, and
    /// declared shared-state races are reported at exit by raising
    /// [`crate::RaceError`] from [`World::run`]. Defaults to on when the
    /// crate is built with the `check` cargo feature, off otherwise. Like
    /// the faults layer, the checker never alters results or clocks.
    pub fn check(mut self, on: bool) -> Self {
        self.check = on;
        self
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Execute `f` on every rank. Panics in any rank abort the world and
    /// re-raise the first panic on the caller's thread.
    pub fn run<R, F>(&self, f: F) -> WorldReport<R>
    where
        R: Send,
        F: Fn(&mut Comm) -> R + Send + Sync,
    {
        let topo = match &self.node_map {
            Some(map) => {
                assert_eq!(map.len(), self.size, "node map must cover every rank");
                Topology::with_node_map(map.clone())
            }
            None => Topology::new(self.size, self.cores_per_node),
        };
        let uni = Arc::new(Universe::new(
            topo,
            self.net.clone(),
            self.memory_budget,
            self.trace,
            self.telemetry,
            self.faults,
            self.collective_timeout,
            self.check,
        ));
        let members: Arc<[usize]> = (0..self.size).collect();
        let started = Instant::now();

        let mut slots: Vec<Option<(R, f64)>> = Vec::with_capacity(self.size);
        slots.resize_with(self.size, || None);

        let panics: Vec<Option<Box<dyn std::any::Any + Send>>> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(self.size);
            for (rank, slot) in slots.iter_mut().enumerate() {
                let uni = Arc::clone(&uni);
                let members = Arc::clone(&members);
                let f = &f;
                let compute_scale = self.compute_scale;
                let builder = std::thread::Builder::new()
                    .name(format!("mpisim-rank-{rank}"))
                    .stack_size(self.stack_size);
                let handle = builder
                    .spawn_scoped(scope, move || {
                        let clock = Rc::new(VirtualClock::new(compute_scale));
                        let mut comm =
                            Comm::new(Arc::clone(&uni), 0, members, rank, Rc::clone(&clock));
                        let out = std::panic::catch_unwind(AssertUnwindSafe(|| f(&mut comm)));
                        match out {
                            Ok(r) => {
                                // A finished rank can never make message
                                // progress again: count it as permanently
                                // blocked so the deadlock detector still
                                // fires when the *other* ranks wait on it.
                                uni.deadlock_mark_finished();
                                *slot = Some((r, clock.now()));
                                None
                            }
                            Err(payload) => {
                                uni.abort();
                                Some(payload)
                            }
                        }
                    })
                    .expect("spawn rank thread");
                handles.push(handle);
            }
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .expect("rank thread must not die outside catch_unwind")
                })
                .collect()
        });

        let mut panics: Vec<_> = panics.into_iter().flatten().collect();
        if !panics.is_empty() {
            // Prefer the original failure over secondary AbortedPanic
            // unwinds raised on ranks that were merely interrupted.
            let original = panics
                .iter()
                .position(|p| !p.is::<crate::comm::AbortedPanic>())
                .unwrap_or(0);
            std::panic::resume_unwind(panics.swap_remove(original));
        }

        // All ranks completed: surface any races the happens-before checker
        // recorded, the same way the deadlock detector surfaces hangs.
        if let Some(report) = uni.checker().take_report() {
            std::panic::panic_any(crate::check::RaceError { report });
        }

        let mut results = Vec::with_capacity(self.size);
        let mut per_rank_time = Vec::with_capacity(self.size);
        for slot in slots {
            let (r, t) = slot.expect("rank completed without panic");
            results.push(r);
            per_rank_time.push(t);
        }
        let makespan = per_rank_time.iter().copied().fold(0.0f64, f64::max);
        let trace_phases = if self.trace {
            uni.tracer()
                .phase_names()
                .into_iter()
                .filter_map(|n| uni.tracer().phase(&n).map(|t| (n, t)))
                .collect()
        } else {
            Vec::new()
        };
        let telemetry = self.telemetry.then(|| uni.recorder().snapshot());
        let per_rank_memory_high_water =
            (0..self.size).map(|r| uni.memory().high_water(r)).collect();
        WorldReport {
            results,
            per_rank_time,
            makespan,
            wall: started.elapsed(),
            messages: uni.stats().messages(),
            bytes: uni.stats().bytes(),
            max_memory_high_water: uni.memory().max_high_water(),
            per_rank_memory_high_water,
            memory_budget: self.memory_budget,
            topology: uni.topology().clone(),
            trace_phases,
            telemetry,
        }
    }
}

/// Outcome of a world run.
#[derive(Debug)]
pub struct WorldReport<R> {
    /// Per-rank results, in rank order.
    pub results: Vec<R>,
    /// Per-rank final virtual-clock values (seconds).
    pub per_rank_time: Vec<f64>,
    /// Maximum virtual clock over ranks — the modelled parallel makespan.
    pub makespan: f64,
    /// Actual wall time of the whole simulation.
    pub wall: Duration,
    /// Total messages sent.
    pub messages: u64,
    /// Total payload bytes sent.
    pub bytes: u64,
    /// Peak simulated memory usage on any rank.
    pub max_memory_high_water: usize,
    /// Peak simulated memory usage per rank.
    pub per_rank_memory_high_water: Vec<usize>,
    /// The per-rank memory budget the world ran under, if any.
    pub memory_budget: Option<usize>,
    /// The rank→node topology the world ran on.
    pub topology: Topology,
    /// Per-phase traffic matrices (empty unless tracing was enabled).
    pub trace_phases: Vec<(String, crate::trace::PhaseTraffic)>,
    /// Recorder snapshot (`None` unless telemetry was enabled).
    pub telemetry: Option<telemetry::Snapshot>,
}

impl<R> WorldReport<R> {
    /// Consume the report, returning only the per-rank results.
    pub fn into_results(self) -> Vec<R> {
        self.results
    }
}
