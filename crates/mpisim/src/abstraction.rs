//! [`Communicator`] implementation for the simulator's [`Comm`].
//!
//! Every trait method delegates to the corresponding inherent method, so
//! code written against the backend-neutral trait behaves *bit-identically*
//! to code written against `Comm` directly: same collective decompositions,
//! same tag sequencing, same telemetry counters, same happens-before
//! edges. Even the methods the trait provides as defaults are overridden
//! here — the defaults mirror these compositions, but delegating keeps the
//! simulator the single source of truth.

use crate::async_a2a::AsyncAlltoallv;
use crate::comm::Comm;
use ::comm::{AsyncExchange, Communicator, OomError, Wire};

impl Communicator for Comm {
    type Async<T: Wire> = AsyncAlltoallv<T>;

    fn size(&self) -> usize {
        Comm::size(self)
    }

    fn rank(&self) -> usize {
        Comm::rank(self)
    }

    fn world_rank(&self) -> usize {
        Comm::world_rank(self)
    }

    fn world_rank_of(&self, r: usize) -> usize {
        Comm::world_rank_of(self, r)
    }

    fn cores_per_node(&self) -> usize {
        Comm::cores_per_node(self)
    }

    fn node(&self) -> usize {
        Comm::node(self)
    }

    fn now(&self) -> f64 {
        self.clock().now()
    }

    fn compute<R>(&self, f: impl FnOnce() -> R) -> R {
        Comm::compute(self, f)
    }

    fn charge_compute(&self, seconds: f64) {
        Comm::charge_compute(self, seconds);
    }

    fn trace_phase(&self, name: &str) {
        Comm::trace_phase(self, name);
    }

    fn recorder(&self) -> &telemetry::Recorder {
        Comm::recorder(self)
    }

    fn span_begin(&self, name: &str) -> telemetry::SpanId {
        Comm::span_begin(self, name)
    }

    fn span_end(&self, id: telemetry::SpanId) {
        Comm::span_end(self, id);
    }

    fn event(&self, name: &str, detail: &str) {
        Comm::event(self, name, detail);
    }

    fn count(&self, name: &str, n: u64) {
        Comm::count(self, name, n);
    }

    fn check_shared_read(&self, key: &str) {
        Comm::check_shared_read(self, key);
    }

    fn check_shared_write(&self, key: &str) {
        Comm::check_shared_write(self, key);
    }

    fn try_alloc(&self, bytes: usize) -> Result<(), OomError> {
        Comm::try_alloc(self, bytes)
    }

    fn free(&self, bytes: usize) {
        Comm::free(self, bytes);
    }

    fn memory_pressure_with(&self, extra: usize) -> f64 {
        Comm::memory_pressure_with(self, extra)
    }

    fn send_vec<T: Wire>(&self, dst: usize, tag: u64, data: Vec<T>) {
        Comm::send_vec(self, dst, tag, data);
    }

    fn send_slice<T: Wire>(&self, dst: usize, tag: u64, data: &[T]) {
        Comm::send_slice(self, dst, tag, data);
    }

    fn send_val<T: Wire>(&self, dst: usize, tag: u64, value: T) {
        Comm::send_val(self, dst, tag, value);
    }

    fn recv_vec<T: Wire>(&self, src: usize, tag: u64) -> Vec<T> {
        Comm::recv_vec(self, src, tag)
    }

    fn recv_val<T: Wire>(&self, src: usize, tag: u64) -> T {
        Comm::recv_val(self, src, tag)
    }

    fn barrier(&self) {
        Comm::barrier(self);
    }

    fn bcast<T: Wire>(&self, root: usize, data: Option<Vec<T>>) -> Vec<T> {
        Comm::bcast(self, root, data)
    }

    fn gatherv<T: Wire>(&self, root: usize, data: &[T]) -> Option<Vec<Vec<T>>> {
        Comm::gatherv(self, root, data)
    }

    fn alltoall<T: Wire>(&self, data: &[T]) -> Vec<T> {
        Comm::alltoall(self, data)
    }

    fn alltoallv_given_counts<T: Wire>(
        &self,
        data: &[T],
        send_counts: &[usize],
        recv_counts: &[usize],
    ) -> Vec<T> {
        Comm::alltoallv_given_counts(self, data, send_counts, recv_counts)
    }

    fn alltoallv_async_given_counts<T: Wire>(
        &self,
        data: &[T],
        send_counts: &[usize],
        recv_counts: Vec<usize>,
    ) -> AsyncAlltoallv<T> {
        Comm::alltoallv_async_given_counts(self, data, send_counts, recv_counts)
    }

    fn split(&self, color: Option<i64>, key: i64) -> Option<Comm> {
        Comm::split(self, color, key)
    }

    fn gather<T: Wire>(&self, root: usize, data: &[T]) -> Option<Vec<T>> {
        Comm::gather(self, root, data)
    }

    fn allgatherv<T: Wire>(&self, data: &[T]) -> (Vec<T>, Vec<usize>) {
        Comm::allgatherv(self, data)
    }

    fn allgather<T: Wire>(&self, data: &[T]) -> Vec<T> {
        Comm::allgather(self, data)
    }

    fn alltoallv<T: Wire>(&self, data: &[T], send_counts: &[usize]) -> (Vec<T>, Vec<usize>) {
        Comm::alltoallv(self, data, send_counts)
    }

    fn alltoallv_async<T: Wire>(&self, data: &[T], send_counts: &[usize]) -> AsyncAlltoallv<T> {
        Comm::alltoallv_async(self, data, send_counts)
    }

    fn reduce<T: Wire>(&self, root: usize, value: T, op: impl Fn(T, T) -> T) -> Option<T> {
        Comm::reduce(self, root, value, op)
    }

    fn allreduce<T: Wire>(&self, value: T, op: impl Fn(T, T) -> T) -> T {
        Comm::allreduce(self, value, op)
    }

    fn exscan<T: Wire>(&self, value: T, op: impl Fn(T, T) -> T) -> Option<T> {
        Comm::exscan(self, value, op)
    }

    fn scan<T: Wire>(&self, value: T, op: impl Fn(T, T) -> T) -> T {
        Comm::scan(self, value, op)
    }

    fn scatterv<T: Wire>(&self, root: usize, chunks: Option<Vec<Vec<T>>>) -> Vec<T> {
        Comm::scatterv(self, root, chunks)
    }

    fn scatter<T: Wire>(&self, root: usize, data: Option<&[T]>) -> Vec<T> {
        Comm::scatter(self, root, data)
    }

    fn reduce_scatter<T: Wire>(&self, contributions: &[T], op: impl Fn(T, T) -> T) -> T {
        Comm::reduce_scatter(self, contributions, op)
    }

    fn split_shared_node(&self) -> Comm {
        Comm::split_shared_node(self)
    }

    fn split_node_leaders(&self) -> Option<Comm> {
        Comm::split_node_leaders(self)
    }

    fn refine_comm(&self) -> (Option<Comm>, Comm) {
        Comm::refine_comm(self)
    }
}

impl<T: Send + 'static> AsyncExchange<T, Comm> for AsyncAlltoallv<T> {
    fn wait_any(&mut self, comm: &Comm) -> Option<(usize, Vec<T>)> {
        AsyncAlltoallv::wait_any(self, comm)
    }

    fn remaining(&self) -> usize {
        AsyncAlltoallv::remaining(self)
    }

    fn recv_counts(&self) -> &[usize] {
        AsyncAlltoallv::recv_counts(self)
    }

    fn total_recv(&self) -> usize {
        AsyncAlltoallv::total_recv(self)
    }

    fn wait_all(&mut self, comm: &Comm) -> Vec<(usize, Vec<T>)> {
        AsyncAlltoallv::wait_all(self, comm)
    }
}

#[cfg(test)]
mod tests {
    use ::comm::Communicator;

    /// A generic driver exercised through the trait only: proves the trait
    /// surface is sufficient for collective + p2p round trips and that the
    /// simulator's implementation matches its inherent behavior.
    fn trait_driver<C: Communicator>(comm: &C) -> (u64, Vec<u64>) {
        let sum = comm.allreduce(comm.rank() as u64 + 1, |a, b| a + b);
        let next = (comm.rank() + 1) % comm.size();
        let prev = (comm.rank() + comm.size() - 1) % comm.size();
        comm.send_val(next, 7, comm.rank() as u64);
        let from_prev: u64 = comm.recv_val(prev, 7);
        assert_eq!(from_prev as usize, prev);
        let gathered = comm.allgather(&[comm.rank() as u64]);
        (sum, gathered)
    }

    #[test]
    fn comm_implements_the_trait() {
        let p = 4;
        let report = crate::World::new(p).run(|comm| trait_driver(comm));
        for (sum, gathered) in report.results {
            assert_eq!(sum, (1..=p as u64).sum());
            assert_eq!(gathered, (0..p as u64).collect::<Vec<_>>());
        }
    }

    #[test]
    fn async_exchange_through_the_trait() {
        let p = 4;
        let report = crate::World::new(p).run(|comm| {
            let data: Vec<u64> = (0..p as u64).map(|i| i * 10 + comm.rank() as u64).collect();
            let counts = vec![1usize; p];
            let mut pending = Communicator::alltoallv_async(comm, &data, &counts);
            let mut by_src = vec![0u64; p];
            while let Some((src, chunk)) = ::comm::AsyncExchange::wait_any(&mut pending, comm) {
                assert_eq!(chunk.len(), 1);
                by_src[src] = chunk[0];
            }
            by_src
        });
        for (r, by_src) in report.results.iter().enumerate() {
            let want: Vec<u64> = (0..p as u64).map(|src| r as u64 * 10 + src).collect();
            assert_eq!(*by_src, want);
        }
    }
}
