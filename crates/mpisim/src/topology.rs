//! Rank-to-node mapping.
//!
//! The SDS-Sort paper runs on Edison, a Cray XC30 whose compute nodes each
//! hold 24 cores (two 12-core Ivy Bridge sockets). Several of the paper's
//! optimizations — node-level merging before the all-to-all exchange, and
//! `MPI_Comm_split_type(MPI_COMM_TYPE_SHARED)` — depend on knowing which
//! ranks share a node. [`Topology`] captures that mapping for the simulated
//! machine: ranks are packed onto nodes in contiguous blocks of
//! `cores_per_node`.

/// Immutable description of how world ranks map onto simulated nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    world_size: usize,
    cores_per_node: usize,
}

impl Topology {
    /// Create a topology for `world_size` ranks packed onto nodes of
    /// `cores_per_node` cores each. The last node may be partially filled.
    ///
    /// # Panics
    /// Panics if either argument is zero.
    pub fn new(world_size: usize, cores_per_node: usize) -> Self {
        assert!(world_size > 0, "world_size must be positive");
        assert!(cores_per_node > 0, "cores_per_node must be positive");
        Self { world_size, cores_per_node }
    }

    /// Number of ranks in the world.
    pub fn world_size(&self) -> usize {
        self.world_size
    }

    /// Cores (= ranks) per node.
    pub fn cores_per_node(&self) -> usize {
        self.cores_per_node
    }

    /// Node index hosting `rank`.
    pub fn node_of(&self, rank: usize) -> usize {
        debug_assert!(rank < self.world_size);
        rank / self.cores_per_node
    }

    /// Total number of (possibly partially filled) nodes.
    pub fn num_nodes(&self) -> usize {
        self.world_size.div_ceil(self.cores_per_node)
    }

    /// Rank's index within its node (0 = node leader).
    pub fn local_index(&self, rank: usize) -> usize {
        rank % self.cores_per_node
    }

    /// Whether `a` and `b` live on the same node (intra-node messages are
    /// cheaper in the network model).
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// World ranks co-located on `rank`'s node, in ascending order.
    pub fn node_members(&self, rank: usize) -> Vec<usize> {
        let node = self.node_of(rank);
        let lo = node * self.cores_per_node;
        let hi = ((node + 1) * self.cores_per_node).min(self.world_size);
        (lo..hi).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packs_ranks_contiguously() {
        let t = Topology::new(10, 4);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(3), 0);
        assert_eq!(t.node_of(4), 1);
        assert_eq!(t.node_of(9), 2);
        assert_eq!(t.num_nodes(), 3);
    }

    #[test]
    fn local_index_and_leader() {
        let t = Topology::new(8, 4);
        assert_eq!(t.local_index(0), 0);
        assert_eq!(t.local_index(5), 1);
        assert_eq!(t.local_index(7), 3);
    }

    #[test]
    fn node_members_last_node_partial() {
        let t = Topology::new(10, 4);
        assert_eq!(t.node_members(9), vec![8, 9]);
        assert_eq!(t.node_members(1), vec![0, 1, 2, 3]);
    }

    #[test]
    fn same_node_symmetry() {
        let t = Topology::new(12, 3);
        assert!(t.same_node(0, 2));
        assert!(!t.same_node(2, 3));
        assert!(t.same_node(4, 5));
    }

    #[test]
    fn single_core_nodes() {
        let t = Topology::new(5, 1);
        assert_eq!(t.num_nodes(), 5);
        for r in 0..5 {
            assert_eq!(t.node_of(r), r);
            assert_eq!(t.node_members(r), vec![r]);
        }
    }

    #[test]
    #[should_panic(expected = "cores_per_node")]
    fn zero_cores_rejected() {
        Topology::new(4, 0);
    }
}
