//! Rank-to-node mapping.
//!
//! The SDS-Sort paper runs on Edison, a Cray XC30 whose compute nodes each
//! hold 24 cores (two 12-core Ivy Bridge sockets). Several of the paper's
//! optimizations — node-level merging before the all-to-all exchange, and
//! `MPI_Comm_split_type(MPI_COMM_TYPE_SHARED)` — depend on knowing which
//! ranks share a node. [`Topology`] captures that mapping for the simulated
//! machine. By default ranks are packed onto nodes in contiguous blocks of
//! `cores_per_node`; [`Topology::with_node_map`] supports arbitrary
//! placements (round-robin launchers, heterogeneous node sizes), and every
//! consumer — the network cost model, node-local communicator splits, and
//! traffic accounting — routes through this type rather than assuming the
//! block layout.

/// Immutable description of how world ranks map onto simulated nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    world_size: usize,
    cores_per_node: usize,
    /// Explicit rank→node map; `None` means the block mapping
    /// `node_of(r) = r / cores_per_node`.
    custom: Option<CustomMap>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct CustomMap {
    node_of: Vec<usize>,
    num_nodes: usize,
}

impl Topology {
    /// Create a topology for `world_size` ranks packed onto nodes of
    /// `cores_per_node` cores each. The last node may be partially filled.
    ///
    /// # Panics
    /// Panics if either argument is zero.
    pub fn new(world_size: usize, cores_per_node: usize) -> Self {
        assert!(world_size > 0, "world_size must be positive");
        assert!(cores_per_node > 0, "cores_per_node must be positive");
        Self {
            world_size,
            cores_per_node,
            custom: None,
        }
    }

    /// Create a topology from an explicit rank→node map (`node_of[rank]`).
    /// Node ids must be dense: every id in `0..max+1` must host at least
    /// one rank.
    ///
    /// # Panics
    /// Panics if the map is empty or has gaps in its node ids.
    pub fn with_node_map(node_of: Vec<usize>) -> Self {
        assert!(!node_of.is_empty(), "node map must cover at least one rank");
        let num_nodes = node_of.iter().max().expect("non-empty") + 1;
        let mut seen = vec![false; num_nodes];
        for &n in &node_of {
            seen[n] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "node ids must be dense (every id in 0..=max occupied)"
        );
        let max_per_node = (0..num_nodes)
            .map(|n| node_of.iter().filter(|&&x| x == n).count())
            .max()
            .expect("at least one node");
        Self {
            world_size: node_of.len(),
            cores_per_node: max_per_node,
            custom: Some(CustomMap { node_of, num_nodes }),
        }
    }

    /// Number of ranks in the world.
    pub fn world_size(&self) -> usize {
        self.world_size
    }

    /// Cores (= ranks) per node. For custom maps this is the *largest*
    /// node's occupancy (nodes may be heterogeneous).
    pub fn cores_per_node(&self) -> usize {
        self.cores_per_node
    }

    /// Node index hosting `rank`.
    pub fn node_of(&self, rank: usize) -> usize {
        debug_assert!(rank < self.world_size);
        match &self.custom {
            Some(m) => m.node_of[rank],
            None => rank / self.cores_per_node,
        }
    }

    /// Total number of (possibly partially filled) nodes.
    pub fn num_nodes(&self) -> usize {
        match &self.custom {
            Some(m) => m.num_nodes,
            None => self.world_size.div_ceil(self.cores_per_node),
        }
    }

    /// Rank's index within its node (0 = node leader).
    pub fn local_index(&self, rank: usize) -> usize {
        match &self.custom {
            Some(m) => {
                let node = m.node_of[rank];
                m.node_of[..rank].iter().filter(|&&n| n == node).count()
            }
            None => rank % self.cores_per_node,
        }
    }

    /// Whether `a` and `b` live on the same node (intra-node messages are
    /// cheaper in the network model).
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// World ranks co-located on `rank`'s node, in ascending order.
    pub fn node_members(&self, rank: usize) -> Vec<usize> {
        match &self.custom {
            Some(m) => {
                let node = m.node_of[rank];
                (0..self.world_size)
                    .filter(|&r| m.node_of[r] == node)
                    .collect()
            }
            None => {
                let node = self.node_of(rank);
                let lo = node * self.cores_per_node;
                let hi = ((node + 1) * self.cores_per_node).min(self.world_size);
                (lo..hi).collect()
            }
        }
    }

    /// The full rank→node map as a vector (`v[rank] = node`).
    pub fn node_map(&self) -> Vec<usize> {
        match &self.custom {
            Some(m) => m.node_of.clone(),
            None => (0..self.world_size)
                .map(|r| r / self.cores_per_node)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packs_ranks_contiguously() {
        let t = Topology::new(10, 4);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(3), 0);
        assert_eq!(t.node_of(4), 1);
        assert_eq!(t.node_of(9), 2);
        assert_eq!(t.num_nodes(), 3);
    }

    #[test]
    fn local_index_and_leader() {
        let t = Topology::new(8, 4);
        assert_eq!(t.local_index(0), 0);
        assert_eq!(t.local_index(5), 1);
        assert_eq!(t.local_index(7), 3);
    }

    #[test]
    fn node_members_last_node_partial() {
        let t = Topology::new(10, 4);
        assert_eq!(t.node_members(9), vec![8, 9]);
        assert_eq!(t.node_members(1), vec![0, 1, 2, 3]);
    }

    #[test]
    fn same_node_symmetry() {
        let t = Topology::new(12, 3);
        assert!(t.same_node(0, 2));
        assert!(!t.same_node(2, 3));
        assert!(t.same_node(4, 5));
    }

    #[test]
    fn single_core_nodes() {
        let t = Topology::new(5, 1);
        assert_eq!(t.num_nodes(), 5);
        for r in 0..5 {
            assert_eq!(t.node_of(r), r);
            assert_eq!(t.node_members(r), vec![r]);
        }
    }

    #[test]
    #[should_panic(expected = "cores_per_node")]
    fn zero_cores_rejected() {
        Topology::new(4, 0);
    }

    #[test]
    fn custom_map_round_robin() {
        // Round-robin placement of 6 ranks over 2 nodes.
        let t = Topology::with_node_map(vec![0, 1, 0, 1, 0, 1]);
        assert_eq!(t.world_size(), 6);
        assert_eq!(t.num_nodes(), 2);
        assert_eq!(t.cores_per_node(), 3);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(3), 1);
        assert!(t.same_node(0, 4));
        assert!(!t.same_node(0, 1));
        assert_eq!(t.node_members(2), vec![0, 2, 4]);
        assert_eq!(t.node_members(1), vec![1, 3, 5]);
        // local_index counts earlier co-residents: 0,2,4 on node 0.
        assert_eq!(t.local_index(0), 0);
        assert_eq!(t.local_index(2), 1);
        assert_eq!(t.local_index(4), 2);
        assert_eq!(t.node_map(), vec![0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn custom_map_heterogeneous_nodes() {
        let t = Topology::with_node_map(vec![0, 0, 0, 1]);
        assert_eq!(t.num_nodes(), 2);
        assert_eq!(t.cores_per_node(), 3);
        assert_eq!(t.node_members(3), vec![3]);
        assert_eq!(t.local_index(3), 0);
    }

    #[test]
    fn block_map_vector_matches_node_of() {
        let t = Topology::new(10, 4);
        let map = t.node_map();
        for (r, &node) in map.iter().enumerate() {
            assert_eq!(node, t.node_of(r));
        }
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn gappy_node_ids_rejected() {
        Topology::with_node_map(vec![0, 2]);
    }
}
