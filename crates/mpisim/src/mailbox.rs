//! Per-rank mailboxes with MPI-style `(context, source, tag)` matching.
//!
//! Every world rank owns one `Mailbox`. A message is an `Envelope`
//! carrying a type-erased payload plus the metadata needed for matching and
//! for the virtual-time model (byte count and arrival timestamp). Receives
//! match on communicator context, source world rank (or any source), and
//! tag — the same matching semantics MPI provides, which is all the sorting
//! algorithms rely on.

use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// A message in flight: type-erased payload plus matching metadata.
pub(crate) struct Envelope {
    /// Communicator context id the message was sent on.
    pub ctx: u64,
    /// World rank of the sender.
    pub src: usize,
    /// User or collective tag.
    pub tag: u64,
    /// The payload, a `Vec<T>` boxed as `Any`.
    pub data: Box<dyn Any + Send>,
    /// Payload size in bytes (for statistics; already charged to clocks).
    pub bytes: usize,
    /// Virtual time at which the message is available to the receiver.
    pub arrival: f64,
    /// Sender's vector clock when the happens-before checker is on
    /// (`None` otherwise; see [`crate::check`]).
    pub stamp: Option<crate::check::Stamp>,
}

/// Source selector for a receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SrcSel {
    /// Match only this world rank.
    Exact(usize),
    /// Match any source (MPI_ANY_SOURCE).
    Any,
}

/// Outcome of a blocking take with a deadline.
pub(crate) enum TakeResult {
    /// A matching envelope was removed from the queue.
    Got(Envelope),
    /// The world aborted while waiting.
    Aborted,
    /// The deadline elapsed with no match (deadlock-detector probe).
    TimedOut,
}

/// A single rank's incoming-message queue.
pub(crate) struct Mailbox {
    queue: Mutex<VecDeque<Envelope>>,
    cv: Condvar,
}

impl Default for Mailbox {
    fn default() -> Self {
        Self {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
        }
    }
}

impl Mailbox {
    /// Deposit an envelope and wake any waiting receiver.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn push(&self, env: Envelope) {
        self.push_reordered(env, 0);
    }

    /// Deposit an envelope, letting it overtake up to `depth` already-queued
    /// envelopes. Messages from the same `(ctx, src)` are never overtaken —
    /// MPI's non-overtaking guarantee holds under reordering faults too.
    pub fn push_reordered(&self, env: Envelope, depth: usize) {
        let mut q = self.queue.lock();
        let mut pos = q.len();
        let mut crossed = 0;
        while pos > 0 && crossed < depth {
            let behind = &q[pos - 1];
            if behind.ctx == env.ctx && behind.src == env.src {
                break;
            }
            pos -= 1;
            crossed += 1;
        }
        q.insert(pos, env);
        drop(q);
        self.cv.notify_all();
    }

    fn matches(e: &Envelope, ctx: u64, src: SrcSel, tag: u64) -> bool {
        e.ctx == ctx
            && e.tag == tag
            && match src {
                SrcSel::Exact(s) => e.src == s,
                SrcSel::Any => true,
            }
    }

    /// Position of the first envelope matching ANY of `specs` (FIFO order).
    fn match_pos_any(
        queue: &VecDeque<Envelope>,
        ctx: u64,
        specs: &[(SrcSel, u64)],
    ) -> Option<usize> {
        queue.iter().position(|e| {
            specs
                .iter()
                .any(|&(src, tag)| Self::matches(e, ctx, src, tag))
        })
    }

    /// Non-blocking take of the first matching envelope.
    pub fn try_take(&self, ctx: u64, src: SrcSel, tag: u64) -> Option<Envelope> {
        let mut q = self.queue.lock();
        Self::match_pos_any(&q, ctx, &[(src, tag)]).and_then(|i| q.remove(i))
    }

    /// Blocking take. Returns `None` if `aborted` becomes set while waiting
    /// (another rank panicked and the world is shutting down).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn take(&self, ctx: u64, src: SrcSel, tag: u64, aborted: &AtomicBool) -> Option<Envelope> {
        match self.take_any_of(ctx, &[(src, tag)], aborted, None) {
            TakeResult::Got(e) => Some(e),
            TakeResult::Aborted => None,
            TakeResult::TimedOut => unreachable!("no deadline was set"),
        }
    }

    /// Blocking take of the first envelope matching any of `specs`,
    /// optionally bounded by a wall-clock deadline (used by the deadlock
    /// detector to probe for global stalls).
    pub fn take_any_of(
        &self,
        ctx: u64,
        specs: &[(SrcSel, u64)],
        aborted: &AtomicBool,
        deadline: Option<std::time::Instant>,
    ) -> TakeResult {
        let mut q = self.queue.lock();
        loop {
            if let Some(i) = Self::match_pos_any(&q, ctx, specs) {
                return TakeResult::Got(q.remove(i).expect("matched position exists"));
            }
            if aborted.load(Ordering::SeqCst) {
                return TakeResult::Aborted;
            }
            // Timed wait so an abort raised while we hold no notification
            // still wakes us promptly.
            let mut wait = Duration::from_millis(25);
            if let Some(d) = deadline {
                let now = std::time::Instant::now();
                if now >= d {
                    return TakeResult::TimedOut;
                }
                wait = wait.min(d - now);
            }
            self.cv.wait_for(&mut q, wait);
        }
    }

    /// Metadata snapshot of every queued envelope: `(ctx, src, tag, bytes)`.
    /// Used for deadlock diagnostics.
    pub fn snapshot(&self) -> Vec<(u64, usize, u64, usize)> {
        self.queue
            .lock()
            .iter()
            .map(|e| (e.ctx, e.src, e.tag, e.bytes))
            .collect()
    }

    /// Wake all waiters (used on world abort).
    pub fn interrupt(&self) {
        self.cv.notify_all();
    }

    /// Number of queued envelopes (diagnostics only).
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.queue.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    fn env(ctx: u64, src: usize, tag: u64, payload: Vec<u32>) -> Envelope {
        let bytes = payload.len() * 4;
        Envelope {
            ctx,
            src,
            tag,
            data: Box::new(payload),
            bytes,
            arrival: 0.0,
            stamp: None,
        }
    }

    #[test]
    fn try_take_matches_ctx_src_tag() {
        let mb = Mailbox::default();
        mb.push(env(1, 0, 7, vec![1]));
        mb.push(env(1, 2, 7, vec![2]));
        mb.push(env(2, 2, 7, vec![3]));

        assert!(mb.try_take(1, SrcSel::Exact(5), 7).is_none());
        let e = mb.try_take(1, SrcSel::Exact(2), 7).unwrap();
        assert_eq!(*e.data.downcast::<Vec<u32>>().unwrap(), vec![2]);
        // ctx 2 message must not match ctx 1 receives
        assert!(mb.try_take(1, SrcSel::Exact(2), 7).is_none());
        assert_eq!(mb.len(), 2);
    }

    #[test]
    fn any_source_takes_fifo_first_match() {
        let mb = Mailbox::default();
        mb.push(env(0, 3, 1, vec![30]));
        mb.push(env(0, 1, 1, vec![10]));
        let e = mb.try_take(0, SrcSel::Any, 1).unwrap();
        assert_eq!(e.src, 3, "FIFO order for any-source matching");
    }

    #[test]
    fn blocking_take_wakes_on_push() {
        let mb = Arc::new(Mailbox::default());
        let aborted = Arc::new(AtomicBool::new(false));
        let mb2 = Arc::clone(&mb);
        let ab2 = Arc::clone(&aborted);
        let h = std::thread::spawn(move || mb2.take(0, SrcSel::Exact(1), 9, &ab2));
        std::thread::sleep(Duration::from_millis(10));
        mb.push(env(0, 1, 9, vec![42]));
        let e = h.join().unwrap().expect("should receive");
        assert_eq!(e.src, 1);
    }

    #[test]
    fn blocking_take_returns_none_on_abort() {
        let mb = Arc::new(Mailbox::default());
        let aborted = Arc::new(AtomicBool::new(false));
        let mb2 = Arc::clone(&mb);
        let ab2 = Arc::clone(&aborted);
        let h = std::thread::spawn(move || mb2.take(0, SrcSel::Exact(1), 9, &ab2));
        std::thread::sleep(Duration::from_millis(5));
        aborted.store(true, Ordering::SeqCst);
        mb.interrupt();
        assert!(h.join().unwrap().is_none());
    }

    #[test]
    fn tag_mismatch_not_taken() {
        let mb = Mailbox::default();
        mb.push(env(0, 0, 5, vec![1]));
        assert!(mb.try_take(0, SrcSel::Exact(0), 6).is_none());
        assert!(mb.try_take(0, SrcSel::Exact(0), 5).is_some());
    }

    #[test]
    fn reordered_push_overtakes_other_sources_only() {
        let mb = Mailbox::default();
        mb.push(env(0, 1, 7, vec![1]));
        mb.push(env(0, 2, 7, vec![2]));
        // src 3 may overtake both queued envelopes (different sources)
        mb.push_reordered(env(0, 3, 7, vec![3]), 8);
        let e = mb.try_take(0, SrcSel::Any, 7).unwrap();
        assert_eq!(e.src, 3, "reordered envelope jumped the queue");

        // but a second message from src 1 must NOT overtake the first
        mb.push_reordered(env(0, 1, 7, vec![11]), 8);
        let a = mb.try_take(0, SrcSel::Exact(1), 7).unwrap();
        assert_eq!(*a.data.downcast::<Vec<u32>>().unwrap(), vec![1]);
        let b = mb.try_take(0, SrcSel::Exact(1), 7).unwrap();
        assert_eq!(*b.data.downcast::<Vec<u32>>().unwrap(), vec![11]);
    }

    #[test]
    fn reorder_depth_bounds_overtaking() {
        let mb = Mailbox::default();
        mb.push(env(0, 1, 7, vec![1]));
        mb.push(env(0, 2, 7, vec![2]));
        mb.push(env(0, 3, 7, vec![3]));
        // depth 1: overtakes only the last envelope
        mb.push_reordered(env(0, 4, 7, vec![4]), 1);
        let order: Vec<usize> = (0..4)
            .map(|_| mb.try_take(0, SrcSel::Any, 7).unwrap().src)
            .collect();
        assert_eq!(order, vec![1, 2, 4, 3]);
    }

    #[test]
    fn take_any_of_matches_multiple_specs() {
        let mb = Mailbox::default();
        let aborted = AtomicBool::new(false);
        mb.push(env(0, 2, 9, vec![2]));
        let specs = [(SrcSel::Exact(1), 8), (SrcSel::Exact(2), 9)];
        match mb.take_any_of(0, &specs, &aborted, None) {
            TakeResult::Got(e) => assert_eq!((e.src, e.tag), (2, 9)),
            _ => panic!("expected envelope"),
        }
    }

    #[test]
    fn take_any_of_times_out() {
        let mb = Mailbox::default();
        let aborted = AtomicBool::new(false);
        let deadline = std::time::Instant::now() + Duration::from_millis(30);
        match mb.take_any_of(0, &[(SrcSel::Any, 1)], &aborted, Some(deadline)) {
            TakeResult::TimedOut => {}
            _ => panic!("expected timeout"),
        }
    }

    #[test]
    fn snapshot_reports_queue_metadata() {
        let mb = Mailbox::default();
        mb.push(env(3, 1, 7, vec![1, 2]));
        assert_eq!(mb.snapshot(), vec![(3, 1, 7, 8)]);
    }
}
