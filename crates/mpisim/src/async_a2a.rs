//! Asynchronous all-to-all exchange with incremental completion.
//!
//! This is the paper's `SdssAlltoallvAsync` / `SdssFinished` pair (§2.6):
//! the exchange is posted with non-blocking semantics and the caller polls
//! for *completed per-peer chunks*, merging each chunk into the output as it
//! arrives — overlapping communication with the local-ordering computation.
//!
//! Our buffered sends make the send side trivially asynchronous; the
//! interesting part is the receive side, which surfaces chunks in arrival
//! order rather than rank order.

use crate::comm::Comm;

/// Handle to an in-flight asynchronous `alltoallv`.
pub struct AsyncAlltoallv<T> {
    tag: u64,
    /// Per-source expected counts (self chunk already delivered if zero).
    pending: Vec<bool>,
    recv_counts: Vec<usize>,
    /// The local (self) chunk, delivered by the first call to `wait_any`.
    self_chunk: Option<Vec<T>>,
    remaining: usize,
}

impl Comm {
    /// Begin an asynchronous variable all-to-all. `data` is partitioned by
    /// `send_counts` exactly as in [`Comm::alltoallv`]. All sends are posted
    /// immediately; completed per-peer chunks are retrieved with
    /// [`AsyncAlltoallv::wait_any`].
    ///
    /// The per-source receive counts are exchanged synchronously first (the
    /// paper does the same with `MPI_Alltoall` before the async phase).
    pub fn alltoallv_async<T: Clone + Send + 'static>(
        &self,
        data: &[T],
        send_counts: &[usize],
    ) -> AsyncAlltoallv<T> {
        let recv_counts = self.alltoall(send_counts);
        self.alltoallv_async_given_counts(data, send_counts, recv_counts)
    }

    /// [`alltoallv_async`](Self::alltoallv_async) with pre-exchanged
    /// receive counts.
    pub fn alltoallv_async_given_counts<T: Clone + Send + 'static>(
        &self,
        data: &[T],
        send_counts: &[usize],
        recv_counts: Vec<usize>,
    ) -> AsyncAlltoallv<T> {
        self.count("coll.alltoallv_async", 1);
        let p = self.size();
        assert_eq!(send_counts.len(), p);
        assert_eq!(send_counts.iter().sum::<usize>(), data.len());
        let tag = self.next_coll_tag();
        let me = self.rank();

        let mut offsets = Vec::with_capacity(p + 1);
        offsets.push(0usize);
        for &c in send_counts {
            offsets.push(offsets.last().copied().expect("non-empty") + c);
        }
        let self_slice = &data[offsets[me]..offsets[me + 1]];
        let self_chunk = (!self_slice.is_empty()).then(|| self_slice.to_vec());
        // Staggered send order, matching the synchronous alltoallv (see
        // there for the arrival-spread rationale).
        for i in 1..p {
            let dst = (me + i) % p;
            let chunk = &data[offsets[dst]..offsets[dst + 1]];
            if !chunk.is_empty() {
                self.send_slice_raw(dst, tag, chunk);
            }
        }

        let mut pending = vec![false; p];
        let mut remaining = 0usize;
        for (src, item) in pending.iter_mut().enumerate() {
            if src != me && recv_counts[src] > 0 {
                *item = true;
                remaining += 1;
            }
        }
        let has_self = self_chunk.is_some();
        AsyncAlltoallv {
            tag,
            pending,
            recv_counts,
            self_chunk,
            remaining: remaining + usize::from(has_self),
        }
    }
}

impl<T: Send + 'static> AsyncAlltoallv<T> {
    /// Number of per-peer chunks not yet delivered.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Per-source receive counts (available immediately).
    pub fn recv_counts(&self) -> &[usize] {
        &self.recv_counts
    }

    /// Total number of records this rank will receive.
    pub fn total_recv(&self) -> usize {
        self.recv_counts.iter().sum()
    }

    /// Retrieve the next completed chunk as `(source_rank, data)`, blocking
    /// if none has arrived yet. Returns `None` once all chunks have been
    /// delivered. The local chunk is delivered first (it is "complete"
    /// immediately), then remote chunks in arrival order — this is the
    /// paper's `SdssFinished`.
    pub fn wait_any(&mut self, comm: &Comm) -> Option<(usize, Vec<T>)> {
        if self.remaining == 0 {
            return None;
        }
        // Progress cost of testing the outstanding requests (MPI_Test
        // sweep): grows with the number of pending peers, which is what
        // erodes the overlap benefit at large process counts (Fig. 5b).
        comm.charge_comm(comm.universe().net().async_test_overhead * self.remaining as f64);
        if let Some(chunk) = self.self_chunk.take() {
            self.remaining -= 1;
            return Some((comm.rank(), chunk));
        }
        // Prefer a chunk that already arrived; otherwise block for any.
        // The *_unordered variants tell the happens-before checker this
        // any-source matching is order-insensitive by protocol: chunks are
        // keyed by source rank and the assert below rejects duplicates, so
        // arrival order cannot change the result.
        let (src, data) = match comm.try_recv_any_unordered_raw::<T>(self.tag) {
            Some(hit) => hit,
            None => comm.recv_any_unordered_raw::<T>(self.tag),
        };
        // A hard check, not a debug assert: a duplicate or foreign chunk
        // here means the exchange protocol was violated (e.g. a tag
        // collision) and would otherwise corrupt the output silently.
        assert!(
            self.pending[src],
            "async alltoallv protocol violation: unexpected chunk from rank {src} \
             on tag {} ({} records); bookkeeping already marked it delivered",
            self.tag,
            data.len()
        );
        self.pending[src] = false;
        self.remaining -= 1;
        Some((src, data))
    }

    /// Drain every remaining chunk, returning them in arrival order.
    pub fn wait_all(&mut self, comm: &Comm) -> Vec<(usize, Vec<T>)> {
        let mut out = Vec::with_capacity(self.remaining);
        while let Some(hit) = self.wait_any(comm) {
            out.push(hit);
        }
        out
    }
}
