//! Communication tracing: per-pair traffic matrices and phase counters.
//!
//! Understanding *who talks to whom, how much, in which phase* is how the
//! paper motivates node-level merging (c² small messages per node pair vs
//! one big one) and HykSort's k-way staging. The tracer records every send
//! into a `p × p` message/byte matrix, optionally segmented by a
//! user-named phase, without entering the virtual-time model — it is a
//! pure observer.
//!
//! Tracing is off by default (zero cost beyond an atomic load per send);
//! enable it per world with [`crate::runtime::World::trace`].

use crate::topology::Topology;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};

/// One phase's traffic matrices.
#[derive(Debug, Clone, Default)]
pub struct PhaseTraffic {
    /// `messages[src][dst]`
    pub messages: Vec<Vec<u64>>,
    /// `bytes[src][dst]`
    pub bytes: Vec<Vec<u64>>,
}

impl PhaseTraffic {
    fn new(p: usize) -> Self {
        Self {
            messages: vec![vec![0; p]; p],
            bytes: vec![vec![0; p]; p],
        }
    }

    /// Total messages in this phase.
    pub fn total_messages(&self) -> u64 {
        self.messages.iter().flatten().sum()
    }

    /// Total bytes in this phase.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().flatten().sum()
    }

    /// Messages crossing node boundaries under the given topology. Custom
    /// rank→node maps (see [`Topology::with_node_map`]) are honoured — this
    /// must not assume the block `rank / cores_per_node` layout.
    pub fn internode_messages(&self, topo: &Topology) -> u64 {
        self.fold_internode(&self.messages, topo)
    }

    /// Bytes crossing node boundaries under the given topology.
    pub fn internode_bytes(&self, topo: &Topology) -> u64 {
        self.fold_internode(&self.bytes, topo)
    }

    fn fold_internode(&self, matrix: &[Vec<u64>], topo: &Topology) -> u64 {
        let mut n = 0;
        for (src, row) in matrix.iter().enumerate() {
            for (dst, &m) in row.iter().enumerate() {
                if !topo.same_node(src, dst) {
                    n += m;
                }
            }
        }
        n
    }
}

/// World-wide communication tracer.
#[derive(Debug)]
pub struct Tracer {
    enabled: AtomicBool,
    size: usize,
    inner: Mutex<TracerInner>,
}

#[derive(Debug)]
struct TracerInner {
    current_phase: String,
    phases: HashMap<String, PhaseTraffic>,
    phase_order: Vec<String>,
}

impl Tracer {
    pub(crate) fn new(size: usize, enabled: bool) -> Self {
        Self {
            enabled: AtomicBool::new(enabled),
            size,
            inner: Mutex::new(TracerInner {
                current_phase: "default".to_string(),
                phases: HashMap::new(),
                phase_order: Vec::new(),
            }),
        }
    }

    /// Whether tracing is active.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::SeqCst)
    }

    pub(crate) fn record(&self, src: usize, dst: usize, bytes: usize) {
        if !self.enabled() {
            return;
        }
        let mut inner = self.inner.lock();
        let p = self.size;
        let phase = inner.current_phase.clone();
        if !inner.phases.contains_key(&phase) {
            inner.phase_order.push(phase.clone());
            inner.phases.insert(phase.clone(), PhaseTraffic::new(p));
        }
        let t = inner.phases.get_mut(&phase).expect("just inserted");
        t.messages[src][dst] += 1;
        t.bytes[src][dst] += bytes as u64;
    }

    /// Start a named phase: subsequent traffic is attributed to it.
    /// Affects the whole world (phases are global, like the algorithm's
    /// own phases); call from one rank or redundantly from all.
    pub fn set_phase(&self, name: &str) {
        if !self.enabled() {
            return;
        }
        let mut inner = self.inner.lock();
        if inner.current_phase != name {
            inner.current_phase = name.to_string();
        }
    }

    /// Snapshot of a phase's traffic, if any was recorded.
    pub fn phase(&self, name: &str) -> Option<PhaseTraffic> {
        self.inner.lock().phases.get(name).cloned()
    }

    /// Phase names in first-traffic order.
    pub fn phase_names(&self) -> Vec<String> {
        self.inner.lock().phase_order.clone()
    }

    /// Sum of all phases.
    pub fn total(&self) -> PhaseTraffic {
        let inner = self.inner.lock();
        let mut out = PhaseTraffic::new(self.size);
        for t in inner.phases.values() {
            for (src, row) in t.messages.iter().enumerate() {
                for (dst, &m) in row.iter().enumerate() {
                    out.messages[src][dst] += m;
                    out.bytes[src][dst] += t.bytes[src][dst];
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new(4, false);
        t.record(0, 1, 100);
        assert!(t.phase("default").is_none());
        assert_eq!(t.total().total_messages(), 0);
    }

    #[test]
    fn records_per_pair_and_phase() {
        let t = Tracer::new(3, true);
        t.record(0, 1, 10);
        t.record(0, 1, 10);
        t.record(2, 0, 5);
        t.set_phase("exchange");
        t.record(1, 2, 100);

        let d = t.phase("default").expect("default phase");
        assert_eq!(d.messages[0][1], 2);
        assert_eq!(d.bytes[0][1], 20);
        assert_eq!(d.messages[2][0], 1);
        assert_eq!(d.total_messages(), 3);

        let e = t.phase("exchange").expect("exchange phase");
        assert_eq!(e.total_bytes(), 100);
        assert_eq!(t.phase_names(), vec!["default", "exchange"]);
        assert_eq!(t.total().total_messages(), 4);
    }

    #[test]
    fn internode_classification() {
        let t = Tracer::new(4, true);
        t.record(0, 1, 8); // same node with 2 cores/node
        t.record(0, 2, 8); // cross node
        t.record(3, 0, 8); // cross node
        let total = t.total();
        assert_eq!(total.internode_messages(&Topology::new(4, 2)), 2);
        assert_eq!(total.internode_messages(&Topology::new(4, 4)), 0);
        assert_eq!(total.internode_bytes(&Topology::new(4, 2)), 16);
    }

    #[test]
    fn internode_respects_custom_node_map() {
        // Round-robin map: ranks 0,2 on node 0; ranks 1,3 on node 1. The
        // old block assumption (`rank / cores_per_node`) would classify
        // 0→2 as crossing and 0→1 as local — both wrong here.
        let t = Tracer::new(4, true);
        t.record(0, 2, 8); // intra-node under the custom map
        t.record(0, 1, 8); // inter-node
        t.record(1, 3, 8); // intra-node
        let topo = Topology::with_node_map(vec![0, 1, 0, 1]);
        let total = t.total();
        assert_eq!(total.internode_messages(&topo), 1);
        assert_eq!(total.internode_bytes(&topo), 8);
    }
}
