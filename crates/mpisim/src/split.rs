//! Communicator splitting (`MPI_Comm_split` and
//! `MPI_Comm_split_type(MPI_COMM_TYPE_SHARED)`).
//!
//! SDS-Sort's `SdssRefineComm` (paper §2.3) needs two derived
//! communicators: `cl`, connecting the ranks sharing a node (for node-level
//! merging), and `cg`, connecting the node leaders (for the subsequent
//! all-to-all among merged per-node buffers). [`Comm::split`] provides the
//! general color/key split; [`Comm::split_shared_node`] and
//! [`Comm::split_node_leaders`] provide the two derived communicators.

use crate::comm::Comm;
use std::sync::Arc;

impl Comm {
    /// Split this communicator by `color`. Ranks passing `None` participate
    /// in the collective but receive no communicator (MPI_UNDEFINED).
    /// Within each color group, new ranks are ordered by `(key, old rank)`.
    ///
    /// The returned communicator shares this rank's virtual clock.
    pub fn split(&self, color: Option<i64>, key: i64) -> Option<Comm> {
        // (color, key) for every member, in this-comm rank order. Encode
        // `None` as i64::MIN sentinel paired with a validity flag.
        let mine = [(color.unwrap_or(i64::MIN), color.is_some() as i64, key)];
        let all = self.allgather(&mine[..]);
        let split_seq = self.next_split_seq();
        let my_color = color?;

        // Collect members with my color, sorted by (key, old comm rank).
        let mut group: Vec<(i64, usize)> = all
            .iter()
            .enumerate()
            .filter(|(_, &(c, valid, _))| valid == 1 && c == my_color)
            .map(|(old_rank, &(_, _, k))| (k, old_rank))
            .collect();
        group.sort_unstable();
        let members: Arc<[usize]> = group
            .iter()
            .map(|&(_, old)| self.world_rank_of(old))
            .collect();
        let my_index = group
            .iter()
            .position(|&(_, old)| old == self.rank())
            .expect("calling rank is in its own color group");

        let ctx = self
            .universe()
            .context_for_split(self.ctx(), split_seq, my_color);
        Some(Comm::new(
            Arc::clone(self.universe()),
            ctx,
            members,
            my_index,
            self.clock_rc(),
        ))
    }

    /// Split into per-node communicators: the returned communicator connects
    /// exactly the ranks of this communicator hosted on the caller's node,
    /// ordered by their rank in this communicator. Equivalent to
    /// `MPI_Comm_split_type(MPI_COMM_TYPE_SHARED)`.
    pub fn split_shared_node(&self) -> Comm {
        let node = self.node() as i64;
        self.split(Some(node), self.rank() as i64)
            .expect("every rank has a node")
    }

    /// Communicator connecting the first rank of this communicator on each
    /// node ("node leaders"). Non-leader ranks return `None`.
    ///
    /// Together with [`split_shared_node`](Self::split_shared_node) this is
    /// the paper's `SdssRefineComm`: `(cg, cl)`.
    pub fn split_node_leaders(&self) -> Option<Comm> {
        // The leader of a node is the member with the smallest rank in this
        // communicator among the co-hosted ranks. Compute locally from the
        // shared-node split to avoid assumptions about topology alignment.
        let local = self.split_shared_node();
        let am_leader = local.rank() == 0;
        // Order leaders by their rank in the parent communicator.
        self.split(if am_leader { Some(0) } else { None }, self.rank() as i64)
    }

    /// The paper's `SdssRefineComm`: returns `(cg, cl)` where `cl` connects
    /// the ranks on this node and `cg` (leaders only) connects node leaders.
    pub fn refine_comm(&self) -> (Option<Comm>, Comm) {
        let cl = self.split_shared_node();
        let am_leader = cl.rank() == 0;
        let cg = self.split(if am_leader { Some(0) } else { None }, self.rank() as i64);
        (cg, cl)
    }
}
