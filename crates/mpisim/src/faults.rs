//! Deterministic, seed-driven fault injection.
//!
//! A [`FaultSpec`] describes *system* misbehaviour — per-message delay
//! jitter, per-peer reordering, rank stalls and slowdowns, transient
//! send-buffer exhaustion, and memory-pressure ramps — and the [`Faults`]
//! policy object threads those decisions through the send/receive paths.
//! Like the telemetry `Recorder`, the object is a pure policy: when no
//! spec is installed every hook is one relaxed atomic load and the
//! simulation is bit-identical to a world built without it.
//!
//! Determinism: every decision is a pure hash of `(seed, stream, sender,
//! peer, sequence number)`, where the sequence numbers are per-sender
//! counters advanced in the sender's own program order. Two runs of a
//! deterministic program under the same spec therefore inject identical
//! faults, regardless of thread scheduling. (The *consequences* of
//! reordering can still be schedule-dependent wherever the program itself
//! is — e.g. any-source receives — exactly as without faults.)

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Configuration for the fault-injection layer. All-zero (the
/// [`FaultSpec::none`] / `Default` value) injects nothing and keeps the
/// layer disabled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Seed for all fault decisions.
    pub seed: u64,
    /// Probability that a message's in-flight time is extended.
    pub delay_prob: f64,
    /// Maximum extra in-flight seconds (uniform in `[0, delay_max_s)`).
    pub delay_max_s: f64,
    /// Probability that a delivered message is inserted out of order.
    pub reorder_prob: f64,
    /// Maximum number of already-queued envelopes a reordered message may
    /// overtake (same-sender order is always preserved — MPI's
    /// non-overtaking guarantee).
    pub reorder_depth: usize,
    /// Stall injection applies to ranks where `rank % stall_every == 0`
    /// (0 disables).
    pub stall_every: usize,
    /// Probability a message operation on a stalled rank injects a stall.
    pub stall_prob: f64,
    /// Stall duration in virtual seconds.
    pub stall_s: f64,
    /// Slowdown applies to ranks where `rank % slow_every == 0`
    /// (0 disables).
    pub slow_every: usize,
    /// Compute-charge multiplier for slowed ranks (> 1.0 slows them down).
    pub slow_factor: f64,
    /// Probability a send hits transient send-buffer exhaustion.
    pub sendbuf_prob: f64,
    /// Number of exhaustion retries before the send proceeds.
    pub sendbuf_retries: u32,
    /// Sender-side backoff per retry in virtual seconds.
    pub sendbuf_backoff_s: f64,
    /// Memory-pressure ramp: virtual time at which pressure starts.
    pub ramp_start_s: f64,
    /// Virtual time at which the ramp reaches its full fraction.
    pub ramp_full_s: f64,
    /// Fraction of the per-rank budget withheld at full ramp (0..=1).
    pub ramp_max_frac: f64,
}

impl FaultSpec {
    /// The inert spec: installs the layer but injects nothing.
    pub fn none() -> Self {
        Self {
            seed: 0,
            delay_prob: 0.0,
            delay_max_s: 0.0,
            reorder_prob: 0.0,
            reorder_depth: 0,
            stall_every: 0,
            stall_prob: 0.0,
            stall_s: 0.0,
            slow_every: 0,
            slow_factor: 1.0,
            sendbuf_prob: 0.0,
            sendbuf_retries: 0,
            sendbuf_backoff_s: 0.0,
            ramp_start_s: 0.0,
            ramp_full_s: 0.0,
            ramp_max_frac: 0.0,
        }
    }

    /// Whether any fault class can actually fire.
    pub fn is_active(&self) -> bool {
        (self.delay_prob > 0.0 && self.delay_max_s > 0.0)
            || (self.reorder_prob > 0.0 && self.reorder_depth > 0)
            || (self.stall_every > 0 && self.stall_prob > 0.0 && self.stall_s > 0.0)
            || (self.slow_every > 0 && self.slow_factor != 1.0)
            || (self.sendbuf_prob > 0.0 && self.sendbuf_retries > 0 && self.sendbuf_backoff_s > 0.0)
            || self.ramp_max_frac > 0.0
    }

    /// Parse a compact spec string of comma-separated clauses, e.g.
    /// `seed=7,delay=0.3:2e-6,reorder=0.2:4,stall=2:0.1:5e-5,slow=3:1.5,sendbuf=0.1:3:1e-5,ramp=0:0.01:0.9`.
    ///
    /// Clauses: `seed=N`, `delay=PROB:MAX_S`, `reorder=PROB:DEPTH`,
    /// `stall=EVERY:PROB:SECONDS`, `slow=EVERY:FACTOR`,
    /// `sendbuf=PROB:RETRIES:BACKOFF_S`, `ramp=START_S:FULL_S:FRAC`.
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut spec = Self::none();
        for clause in s.split(',').filter(|c| !c.trim().is_empty()) {
            let (key, val) = clause
                .split_once('=')
                .ok_or_else(|| format!("fault clause `{clause}` is not KEY=VALUE"))?;
            let parts: Vec<&str> = val.split(':').collect();
            let f = |i: usize| -> Result<f64, String> {
                parts
                    .get(i)
                    .ok_or_else(|| format!("`{key}` needs more fields in `{clause}`"))?
                    .parse::<f64>()
                    .map_err(|e| format!("bad number in `{clause}`: {e}"))
            };
            let n = |i: usize| -> Result<u64, String> {
                parts
                    .get(i)
                    .ok_or_else(|| format!("`{key}` needs more fields in `{clause}`"))?
                    .parse::<u64>()
                    .map_err(|e| format!("bad integer in `{clause}`: {e}"))
            };
            match key.trim() {
                "seed" => spec.seed = n(0)?,
                "delay" => {
                    spec.delay_prob = f(0)?;
                    spec.delay_max_s = f(1)?;
                }
                "reorder" => {
                    spec.reorder_prob = f(0)?;
                    spec.reorder_depth = n(1)? as usize;
                }
                "stall" => {
                    spec.stall_every = n(0)? as usize;
                    spec.stall_prob = f(1)?;
                    spec.stall_s = f(2)?;
                }
                "slow" => {
                    spec.slow_every = n(0)? as usize;
                    spec.slow_factor = f(1)?;
                }
                "sendbuf" => {
                    spec.sendbuf_prob = f(0)?;
                    spec.sendbuf_retries = n(1)? as u32;
                    spec.sendbuf_backoff_s = f(2)?;
                }
                "ramp" => {
                    spec.ramp_start_s = f(0)?;
                    spec.ramp_full_s = f(1)?;
                    spec.ramp_max_frac = f(2)?;
                }
                other => return Err(format!("unknown fault clause `{other}`")),
            }
        }
        Ok(spec)
    }

    /// Worst-case extra virtual seconds a single message operation can
    /// incur (jitter + full send-buffer backoff + one stall). Used by
    /// harnesses to assert bounded virtual-time inflation.
    pub fn worst_case_per_message_s(&self) -> f64 {
        let mut s = self.delay_max_s;
        s += self.sendbuf_retries as f64 * self.sendbuf_backoff_s;
        s += self.stall_s;
        s
    }
}

impl Default for FaultSpec {
    fn default() -> Self {
        Self::none()
    }
}

/// Per-message fault decision produced once per send.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub(crate) struct MessageFaults {
    /// Sender-side backoff from transient send-buffer exhaustion (seconds).
    pub send_backoff_s: f64,
    /// Extra in-flight time from delay jitter (seconds).
    pub extra_transit_s: f64,
    /// How many queued envelopes this message may overtake on delivery.
    pub reorder_depth: usize,
}

/// splitmix64 finalizer — a pure, well-mixed hash of the decision key.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map a hash to a uniform float in [0, 1).
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// The runtime fault policy installed in a [`crate::Universe`].
///
/// Disabled (the default) unless built from an active [`FaultSpec`];
/// every hook's disabled path is a single relaxed atomic load.
pub(crate) struct Faults {
    enabled: AtomicBool,
    spec: FaultSpec,
    /// Per-sender message counters (sender program order — deterministic).
    msg_seq: Vec<AtomicU64>,
    /// Per-rank message-operation counters for stall decisions.
    op_seq: Vec<AtomicU64>,
}

impl Faults {
    pub fn new(world_size: usize, spec: Option<FaultSpec>) -> Self {
        let spec = spec.unwrap_or_else(FaultSpec::none);
        let active = spec.is_active();
        let counters = if active { world_size } else { 0 };
        Self {
            enabled: AtomicBool::new(active),
            spec,
            msg_seq: (0..counters).map(|_| AtomicU64::new(0)).collect(),
            op_seq: (0..counters).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    #[cfg_attr(not(test), allow(dead_code))]
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Fault decision for the next message `src → dst`. `None` when the
    /// layer is disabled (the common case: one relaxed load).
    #[inline]
    pub fn message(&self, src: usize, dst: usize) -> Option<MessageFaults> {
        if !self.enabled.load(Ordering::Relaxed) {
            return None;
        }
        Some(self.message_slow(src, dst))
    }

    #[cold]
    fn message_slow(&self, src: usize, dst: usize) -> MessageFaults {
        let seq = self.msg_seq[src].fetch_add(1, Ordering::Relaxed);
        let key = self
            .spec
            .seed
            .wrapping_mul(0xA24B_AED4_963E_E407)
            .wrapping_add((src as u64) << 32 | dst as u64)
            .wrapping_add(seq.wrapping_mul(0x9FB2_1C65_1E98_DF25));
        let mut out = MessageFaults::default();
        let s = &self.spec;
        if s.delay_prob > 0.0 && s.delay_max_s > 0.0 {
            let h = mix(key ^ 0x01);
            if unit(h) < s.delay_prob {
                out.extra_transit_s = unit(mix(h)) * s.delay_max_s;
            }
        }
        if s.reorder_prob > 0.0 && s.reorder_depth > 0 {
            let h = mix(key ^ 0x02);
            if unit(h) < s.reorder_prob {
                out.reorder_depth = 1 + (mix(h) % s.reorder_depth as u64) as usize;
            }
        }
        if s.sendbuf_prob > 0.0 && s.sendbuf_retries > 0 && s.sendbuf_backoff_s > 0.0 {
            let h = mix(key ^ 0x03);
            if unit(h) < s.sendbuf_prob {
                let retries = 1 + mix(h) % s.sendbuf_retries as u64;
                out.send_backoff_s = retries as f64 * s.sendbuf_backoff_s;
            }
        }
        out
    }

    /// Stall seconds to inject for the next message operation on `rank`
    /// (0.0 when disabled or the rank is not selected).
    #[inline]
    pub fn op_stall(&self, rank: usize) -> f64 {
        if !self.enabled.load(Ordering::Relaxed) {
            return 0.0;
        }
        self.op_stall_slow(rank)
    }

    #[cold]
    fn op_stall_slow(&self, rank: usize) -> f64 {
        let s = &self.spec;
        if s.stall_every == 0 || s.stall_prob <= 0.0 || s.stall_s <= 0.0 {
            return 0.0;
        }
        if !rank.is_multiple_of(s.stall_every) {
            return 0.0;
        }
        let seq = self.op_seq[rank].fetch_add(1, Ordering::Relaxed);
        let h = mix(s
            .seed
            .wrapping_mul(0xD6E8_FEB8_6659_FD93)
            .wrapping_add(rank as u64)
            .wrapping_add(seq << 20));
        if unit(h) < s.stall_prob {
            s.stall_s
        } else {
            0.0
        }
    }

    /// Compute-charge multiplier for `rank` (1.0 when disabled or the rank
    /// is not slowed).
    #[inline]
    pub fn compute_factor(&self, rank: usize) -> f64 {
        if !self.enabled.load(Ordering::Relaxed) {
            return 1.0;
        }
        let s = &self.spec;
        if s.slow_every > 0 && rank.is_multiple_of(s.slow_every) {
            s.slow_factor
        } else {
            1.0
        }
    }

    /// Bytes of `budget` withheld from `rank` by the memory-pressure ramp
    /// at virtual time `now`. 0 when disabled or the budget is unlimited.
    #[inline]
    pub fn withheld(&self, rank: usize, now: f64, budget: usize) -> usize {
        if !self.enabled.load(Ordering::Relaxed) {
            return 0;
        }
        self.withheld_slow(rank, now, budget)
    }

    #[cold]
    fn withheld_slow(&self, _rank: usize, now: f64, budget: usize) -> usize {
        let s = &self.spec;
        if s.ramp_max_frac <= 0.0 || budget == usize::MAX {
            return 0;
        }
        let frac = if now <= s.ramp_start_s {
            0.0
        } else if now >= s.ramp_full_s || s.ramp_full_s <= s.ramp_start_s {
            s.ramp_max_frac
        } else {
            s.ramp_max_frac * (now - s.ramp_start_s) / (s.ramp_full_s - s.ramp_start_s)
        };
        (budget as f64 * frac.clamp(0.0, 1.0)) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_spec_is_disabled() {
        let f = Faults::new(4, Some(FaultSpec::none()));
        assert!(!f.enabled());
        assert!(f.message(0, 1).is_none());
        assert_eq!(f.op_stall(0), 0.0);
        assert_eq!(f.compute_factor(0), 1.0);
        assert_eq!(f.withheld(0, 10.0, 1000), 0);
        let absent = Faults::new(4, None);
        assert!(!absent.enabled());
    }

    #[test]
    fn decisions_are_deterministic_per_sequence() {
        let spec = FaultSpec {
            seed: 42,
            delay_prob: 0.5,
            delay_max_s: 1e-5,
            reorder_prob: 0.5,
            reorder_depth: 4,
            sendbuf_prob: 0.3,
            sendbuf_retries: 3,
            sendbuf_backoff_s: 1e-6,
            ..FaultSpec::none()
        };
        let a = Faults::new(4, Some(spec));
        let b = Faults::new(4, Some(spec));
        for _ in 0..100 {
            assert_eq!(a.message(1, 2), b.message(1, 2));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mk = |seed| FaultSpec {
            seed,
            delay_prob: 0.5,
            delay_max_s: 1e-5,
            ..FaultSpec::none()
        };
        let a = Faults::new(2, Some(mk(1)));
        let b = Faults::new(2, Some(mk(2)));
        let seq_a: Vec<_> = (0..64).map(|_| a.message(0, 1).unwrap()).collect();
        let seq_b: Vec<_> = (0..64).map(|_| b.message(0, 1).unwrap()).collect();
        assert_ne!(seq_a, seq_b);
    }

    #[test]
    fn stall_respects_stride() {
        let spec = FaultSpec {
            seed: 7,
            stall_every: 2,
            stall_prob: 1.0,
            stall_s: 1e-3,
            ..FaultSpec::none()
        };
        let f = Faults::new(4, Some(spec));
        assert_eq!(f.op_stall(1), 0.0, "odd ranks are never stalled");
        assert_eq!(f.op_stall(2), 1e-3);
    }

    #[test]
    fn ramp_withholds_monotonically() {
        let spec = FaultSpec {
            ramp_start_s: 1.0,
            ramp_full_s: 3.0,
            ramp_max_frac: 0.5,
            ..FaultSpec::none()
        };
        let f = Faults::new(1, Some(spec));
        assert_eq!(f.withheld(0, 0.5, 1000), 0);
        let mid = f.withheld(0, 2.0, 1000);
        assert!(mid > 0 && mid < 500, "mid-ramp withholds partially: {mid}");
        assert_eq!(f.withheld(0, 10.0, 1000), 500);
        // unlimited budgets are never withheld from
        assert_eq!(f.withheld(0, 10.0, usize::MAX), 0);
    }

    #[test]
    fn parse_round_trips_all_clauses() {
        let s = "seed=7,delay=0.3:2e-6,reorder=0.2:4,stall=2:0.1:5e-5,slow=3:1.5,sendbuf=0.1:3:1e-5,ramp=0:0.01:0.9";
        let spec = FaultSpec::parse(s).expect("parses");
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.delay_prob, 0.3);
        assert_eq!(spec.delay_max_s, 2e-6);
        assert_eq!(spec.reorder_depth, 4);
        assert_eq!(spec.stall_every, 2);
        assert_eq!(spec.slow_factor, 1.5);
        assert_eq!(spec.sendbuf_retries, 3);
        assert_eq!(spec.ramp_max_frac, 0.9);
        assert!(spec.is_active());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultSpec::parse("bogus=1").is_err());
        assert!(FaultSpec::parse("delay").is_err());
        assert!(FaultSpec::parse("delay=x:y").is_err());
        assert!(FaultSpec::parse("delay=0.5").is_err(), "missing field");
        assert!(FaultSpec::parse("").is_ok_and(|s| !s.is_active()));
    }
}
