//! The communicator handle: point-to-point messaging, clocks, memory.
//!
//! A [`Comm`] is a single rank's view of a communicator, analogous to an
//! `MPI_Comm` plus the calling rank. It is deliberately `!Send`: a rank's
//! communicator lives on that rank's thread. All sends are *buffered*
//! (payload copied/moved into the envelope), so the common
//! send-everything-then-receive-everything pattern cannot deadlock.
//!
//! Tags: user code may use any tag below [`Comm::MAX_USER_TAG`]. Collectives
//! use a reserved high tag space keyed by a per-communicator operation
//! sequence number, so user messages and collective traffic never match
//! each other even when interleaved.

use crate::clock::VirtualClock;
use crate::error::OomError;
use crate::mailbox::{Envelope, SrcSel, TakeResult};
use crate::universe::{DeadlockError, Universe, WaitDesc};
use std::cell::Cell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Human-readable description of a tag: collective tags are decoded into
/// their operation sequence number and round. Shared by the deadlock
/// detector and the happens-before checker's reports.
pub(crate) fn describe_tag(tag: u64) -> String {
    if tag >= Comm::MAX_USER_TAG {
        let seq = (tag - Comm::MAX_USER_TAG) >> 12;
        let round = tag & 0xFFF;
        format!("collective #{seq} round {round}")
    } else {
        format!("user tag {tag}")
    }
}

/// Panic payload used when a rank unwinds *because another rank panicked*
/// (the world was aborted). The runtime filters these out so the original
/// failure is the one re-raised to the caller.
#[derive(Debug)]
pub struct AbortedPanic {
    /// Communicator rank that was interrupted.
    pub rank: usize,
}

/// A rank-local handle to a communicator.
pub struct Comm {
    uni: Arc<Universe>,
    /// Context id distinguishing this communicator's traffic.
    ctx: u64,
    /// World ranks of the members, ordered by communicator rank.
    members: Arc<[usize]>,
    /// Map from world rank to communicator rank for members.
    world_to_comm: Arc<HashMap<usize, usize>>,
    /// This rank's position within `members`.
    my_index: usize,
    /// This rank's virtual clock (shared with sibling communicators of the
    /// same rank, e.g. after a split).
    clock: Rc<VirtualClock>,
    /// Number of splits performed on this communicator (for deterministic
    /// child context ids).
    split_seq: Cell<u64>,
    /// Number of collective operations performed (for tag isolation).
    coll_seq: Cell<u64>,
}

impl Comm {
    /// Largest tag value available to user point-to-point messages
    /// (defined once in the backend-neutral `comm` crate).
    pub const MAX_USER_TAG: u64 = ::comm::MAX_USER_TAG;

    pub(crate) fn new(
        uni: Arc<Universe>,
        ctx: u64,
        members: Arc<[usize]>,
        my_index: usize,
        clock: Rc<VirtualClock>,
    ) -> Self {
        let world_to_comm = Arc::new(
            members
                .iter()
                .enumerate()
                .map(|(i, &w)| (w, i))
                .collect::<HashMap<_, _>>(),
        );
        Self {
            uni,
            ctx,
            members,
            world_to_comm,
            my_index,
            clock,
            split_seq: Cell::new(0),
            coll_seq: Cell::new(0),
        }
    }

    /// Communicator size (`MPI_Comm_size`).
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// This rank within the communicator (`MPI_Comm_rank`).
    pub fn rank(&self) -> usize {
        self.my_index
    }

    /// This rank in the world communicator.
    pub fn world_rank(&self) -> usize {
        self.members[self.my_index]
    }

    /// World rank of communicator rank `r`.
    pub fn world_rank_of(&self, r: usize) -> usize {
        self.members[r]
    }

    /// Communicator rank of world rank `w`, if a member.
    pub(crate) fn comm_rank_of_world(&self, w: usize) -> Option<usize> {
        self.world_to_comm.get(&w).copied()
    }

    /// The shared world state.
    pub fn universe(&self) -> &Arc<Universe> {
        &self.uni
    }

    /// This rank's virtual clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    pub(crate) fn clock_rc(&self) -> Rc<VirtualClock> {
        Rc::clone(&self.clock)
    }

    /// Shorthand: run `f`, measure wall time, charge it to the clock.
    pub fn compute<R>(&self, f: impl FnOnce() -> R) -> R {
        let before = self.clock.now();
        let r = self.clock.measure(f);
        let factor = self.uni.faults().compute_factor(self.world_rank());
        if factor != 1.0 {
            // Slowed rank: the same work takes `factor` times as long.
            let dt = self.clock.now() - before;
            self.clock.charge(dt * (factor - 1.0));
        }
        self.uni
            .recorder
            .add_compute(self.world_rank(), self.clock.now() - before);
        r
    }

    /// Charge modeled compute seconds to this rank's clock, attributing
    /// them to the compute ledger in the telemetry recorder.
    pub fn charge_compute(&self, seconds: f64) {
        let seconds = seconds * self.uni.faults().compute_factor(self.world_rank());
        self.clock.charge(seconds);
        self.uni.recorder.add_compute(self.world_rank(), seconds);
    }

    /// Charge communication-overhead seconds (injection, probe costs) to
    /// this rank's clock, attributing them to the comm ledger.
    pub(crate) fn charge_comm(&self, seconds: f64) {
        self.clock.charge(seconds);
        self.uni.recorder.add_comm(self.world_rank(), seconds);
    }

    /// Attribute subsequent traced traffic (tracer matrices and telemetry
    /// phase totals) to the named phase. No-op when both are disabled.
    pub fn trace_phase(&self, name: &str) {
        self.uni.tracer.set_phase(name);
        self.uni.recorder.set_phase(name);
        if self.uni.deadlock.timeout.is_some() {
            *self.uni.deadlock.last_phase[self.world_rank()].lock() = name.to_string();
        }
        self.uni.checker().on_phase(self.world_rank(), name);
    }

    /// Declare a read of rank-shared host state named `key` to the
    /// happens-before checker (see [`crate::check`]): two ranks touching the
    /// same key with no synchronization edge between them (a message path or
    /// collective) are reported as a race at world exit. No-op unless the
    /// world was built with [`crate::World::check`].
    pub fn check_shared_read(&self, key: &str) {
        self.uni.checker().on_shared_read(self.world_rank(), key);
    }

    /// Declare a write of rank-shared host state named `key` to the
    /// happens-before checker. See [`Comm::check_shared_read`].
    pub fn check_shared_write(&self, key: &str) {
        self.uni.checker().on_shared_write(self.world_rank(), key);
    }

    /// The world's telemetry recorder (disabled unless the world was built
    /// with [`crate::World::telemetry`]).
    pub fn recorder(&self) -> &telemetry::Recorder {
        &self.uni.recorder
    }

    /// Open a telemetry span on this rank at the current virtual time.
    pub fn span_begin(&self, name: &str) -> telemetry::SpanId {
        self.uni
            .recorder
            .span_begin(self.world_rank(), name, self.clock.now())
    }

    /// Close a telemetry span at the current virtual time.
    pub fn span_end(&self, id: telemetry::SpanId) {
        self.uni.recorder.span_end(id, self.clock.now());
    }

    /// Record a telemetry point event on this rank at the current virtual
    /// time.
    pub fn event(&self, name: &str, detail: &str) {
        self.uni
            .recorder
            .event(self.world_rank(), name, detail, self.clock.now());
    }

    /// Bump a named telemetry counter.
    pub fn count(&self, name: &str, n: u64) {
        self.uni.recorder.count(name, n);
    }

    /// Reserve `bytes` of simulated memory on this rank. Under a
    /// memory-pressure fault ramp, part of the budget is withheld and the
    /// effective headroom shrinks over virtual time.
    pub fn try_alloc(&self, bytes: usize) -> Result<(), OomError> {
        let withheld = self.uni.faults().withheld(
            self.world_rank(),
            self.clock.now(),
            self.uni.memory().budget(),
        );
        let res = self
            .uni
            .memory()
            .try_alloc_reserved(self.world_rank(), bytes, withheld);
        if self.uni.recorder.enabled() {
            if let Err(e) = &res {
                self.uni.recorder.count("mem.oom", 1);
                self.event(
                    "oom",
                    &format!("requested {} with {} available", e.requested, e.available),
                );
            }
            self.uni.recorder.gauge_max(
                "mem.high_water",
                self.uni.memory().high_water(self.world_rank()) as f64,
            );
        }
        res
    }

    /// Release a simulated-memory reservation.
    pub fn free(&self, bytes: usize) {
        self.uni.memory().free(self.world_rank(), bytes);
    }

    /// Fraction of this rank's *effective* memory budget (budget minus any
    /// fault-withheld bytes) that would be in use after reserving `extra`
    /// more bytes. Always 0.0 with an unlimited budget. Drivers use this to
    /// detect memory pressure and degrade gracefully before an allocation
    /// actually fails.
    pub fn memory_pressure_with(&self, extra: usize) -> f64 {
        let budget = self.uni.memory().budget();
        if budget == usize::MAX {
            return 0.0;
        }
        let withheld = self
            .uni
            .faults()
            .withheld(self.world_rank(), self.clock.now(), budget);
        let effective = budget.saturating_sub(withheld).max(1);
        self.uni
            .memory()
            .used(self.world_rank())
            .saturating_add(extra) as f64
            / effective as f64
    }

    /// Cores per node of the simulated machine.
    pub fn cores_per_node(&self) -> usize {
        self.uni.topology().cores_per_node()
    }

    /// Node id (in the simulated machine) hosting this rank.
    pub fn node(&self) -> usize {
        self.uni.topology().node_of(self.world_rank())
    }

    fn check_alive(&self) {
        if self.uni.is_aborted() {
            std::panic::panic_any(AbortedPanic { rank: self.rank() });
        }
    }

    pub(crate) fn next_coll_tag(&self) -> u64 {
        let seq = self.coll_seq.get();
        self.coll_seq.set(seq + 1);
        debug_assert!(
            seq < (1 << 15),
            "collective sequence number overflow risk (seq {seq})"
        );
        // Reserved space above MAX_USER_TAG; round numbers within one
        // collective are added by the caller (< 4096 rounds).
        Self::MAX_USER_TAG + (seq << 12)
    }

    /// Reject tags that would collide with the reserved collective tag
    /// space. An in-flight asynchronous collective receives with
    /// any-source matching on its reserved tag; a user message forged into
    /// that space could be stolen by it and silently corrupt the exchange.
    #[track_caller]
    fn assert_user_tag(tag: u64) {
        assert!(
            tag < Self::MAX_USER_TAG,
            "tag {tag} is outside the user tag space: tags at or above \
             Comm::MAX_USER_TAG (2^48) are reserved for collective operations"
        );
    }

    /// Charge any injected stall for one message operation on this rank.
    fn inject_op_stall(&self) {
        let s = self.uni.faults().op_stall(self.world_rank());
        if s > 0.0 {
            self.charge_comm(s);
        }
    }

    pub(crate) fn next_split_seq(&self) -> u64 {
        let s = self.split_seq.get();
        self.split_seq.set(s + 1);
        s
    }

    // ---- point-to-point ---------------------------------------------------

    /// Send an owned vector to communicator rank `dst` with `tag`.
    /// Buffered: returns as soon as the envelope is enqueued. The sender's
    /// clock is charged the injection cost from the network model.
    ///
    /// `tag` must be below [`Comm::MAX_USER_TAG`]; the space above it is
    /// reserved for collectives.
    pub fn send_vec<T: Clone + Send + 'static>(&self, dst: usize, tag: u64, data: Vec<T>) {
        Self::assert_user_tag(tag);
        self.send_vec_raw(dst, tag, data);
    }

    /// Internal send without the user-tag check — collectives and async
    /// exchanges send on reserved tags through this path.
    pub(crate) fn send_vec_raw<T: Clone + Send + 'static>(
        &self,
        dst: usize,
        tag: u64,
        data: Vec<T>,
    ) {
        self.check_alive();
        self.inject_op_stall();
        let bytes = std::mem::size_of::<T>() * data.len();
        let src_w = self.world_rank();
        let dst_w = self.members[dst];
        let topo = self.uni.topology();
        let net = self.uni.net();
        let (inject, transit, reorder_depth) = match self.uni.faults().message(src_w, dst_w) {
            Some(mf) => {
                let (i, t) = net.perturbed_times(topo, src_w, dst_w, bytes, &mf);
                (i, t, mf.reorder_depth)
            }
            None => (
                net.inject_time(topo, src_w, dst_w, bytes),
                net.transit_time(topo, src_w, dst_w, bytes),
                0,
            ),
        };
        self.charge_comm(inject);
        let arrival = self.clock.now() + transit;
        self.uni.stats().record(bytes);
        self.uni.tracer.record(src_w, dst_w, bytes);
        self.uni.recorder.on_send(src_w, dst_w, bytes);
        let stamp = self.uni.checker().on_send(src_w, dst_w, self.ctx, tag);
        self.uni.mailboxes[dst_w].push_reordered(
            Envelope {
                ctx: self.ctx,
                src: src_w,
                tag,
                data: Box::new(data),
                bytes,
                arrival,
                stamp,
            },
            reorder_depth,
        );
        if self.uni.deadlock.timeout.is_some() {
            self.uni.deadlock.progress.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Send a copy of a slice to communicator rank `dst`.
    pub fn send_slice<T: Clone + Send + 'static>(&self, dst: usize, tag: u64, data: &[T]) {
        self.send_vec(dst, tag, data.to_vec());
    }

    pub(crate) fn send_slice_raw<T: Clone + Send + 'static>(
        &self,
        dst: usize,
        tag: u64,
        data: &[T],
    ) {
        self.send_vec_raw(dst, tag, data.to_vec());
    }

    /// Send a single value.
    pub fn send_val<T: Clone + Send + 'static>(&self, dst: usize, tag: u64, value: T) {
        self.send_vec(dst, tag, vec![value]);
    }

    pub(crate) fn send_val_raw<T: Clone + Send + 'static>(&self, dst: usize, tag: u64, value: T) {
        self.send_vec_raw(dst, tag, vec![value]);
    }

    fn take_envelope(&self, src: SrcSel, tag: u64) -> Envelope {
        self.inject_op_stall();
        self.blocking_take(&[(src, tag)])
    }

    /// Block until an envelope matching any of `specs` arrives. Registers
    /// the wait with the deadlock watch when a collective timeout is
    /// configured.
    fn blocking_take(&self, specs: &[(SrcSel, u64)]) -> Envelope {
        let me_w = self.world_rank();
        let mb = &self.uni.mailboxes[me_w];
        let dl = &self.uni.deadlock;
        let result = match dl.timeout {
            None => mb.take_any_of(self.ctx, specs, &self.uni.aborted, None),
            Some(window) => {
                {
                    let (src, tag) = specs[0];
                    *dl.waits[me_w].lock() = Some(WaitDesc {
                        ctx: self.ctx,
                        src: match src {
                            SrcSel::Exact(s) => Some(s),
                            SrcSel::Any => None,
                        },
                        tag,
                    });
                }
                dl.blocked.fetch_add(1, Ordering::SeqCst);
                let r = self.take_watched(specs, window);
                dl.blocked.fetch_sub(1, Ordering::SeqCst);
                *dl.waits[me_w].lock() = None;
                r
            }
        };
        match result {
            TakeResult::Got(env) => {
                if dl.timeout.is_some() {
                    dl.progress.fetch_add(1, Ordering::SeqCst);
                }
                env
            }
            TakeResult::Aborted | TakeResult::TimedOut => {
                std::panic::panic_any(AbortedPanic { rank: self.rank() })
            }
        }
    }

    /// Deadline-probing take used by the collective-timeout detector: if
    /// every rank in the world stays blocked in a receive and no envelope
    /// is delivered or taken for a full `window`, the run is provably
    /// deadlocked — raise a diagnostic instead of hanging forever.
    fn take_watched(&self, specs: &[(SrcSel, u64)], window: Duration) -> TakeResult {
        let mb = &self.uni.mailboxes[self.world_rank()];
        let dl = &self.uni.deadlock;
        let mut progress_snapshot = dl.progress.load(Ordering::SeqCst);
        loop {
            let deadline = Instant::now() + window;
            match mb.take_any_of(self.ctx, specs, &self.uni.aborted, Some(deadline)) {
                TakeResult::TimedOut => {
                    let progress_now = dl.progress.load(Ordering::SeqCst);
                    let all_blocked =
                        dl.blocked.load(Ordering::SeqCst) == self.uni.topology().world_size();
                    if all_blocked && progress_now == progress_snapshot {
                        self.raise_deadlock(window);
                    }
                    progress_snapshot = progress_now;
                }
                other => return other,
            }
        }
    }

    /// Record a completed receive with the happens-before checker.
    /// `wildcard` marks any-source matching whose order nondeterminism is a
    /// real program property (see [`crate::check`]).
    fn note_recv(&self, env: &Envelope, wildcard: bool) {
        self.uni.checker().on_recv(
            self.world_rank(),
            env.ctx,
            env.tag,
            env.src,
            env.stamp.as_ref(),
            wildcard,
        );
    }

    /// Build and raise the deadlock report. Only the first detecting rank
    /// raises [`DeadlockError`]; the abort it triggers unwinds the rest
    /// with [`AbortedPanic`], so the diagnostic surfaces from the runtime.
    #[cold]
    fn raise_deadlock(&self, window: Duration) -> ! {
        use std::fmt::Write as _;
        let dl = &self.uni.deadlock;
        let mut slot = dl.report.lock();
        if slot.is_some() {
            drop(slot);
            std::panic::panic_any(AbortedPanic { rank: self.rank() });
        }
        let p = self.uni.topology().world_size();
        let mut rep = String::new();
        let _ = writeln!(
            rep,
            "all {p} ranks blocked with no message progress for {window:?} \
             (detected by world rank {})",
            self.world_rank()
        );
        for r in 0..p {
            let wait = dl.waits[r].lock().clone();
            let phase = dl.last_phase[r].lock().clone();
            let pending = self.uni.mailboxes[r].snapshot();
            let wait_s = match wait {
                Some(w) => format!(
                    "waiting on ctx {} for {} from {}",
                    w.ctx,
                    describe_tag(w.tag),
                    w.src
                        .map_or_else(|| "any source".to_string(), |s| format!("world rank {s}")),
                ),
                None => "not blocked in a receive (finished, or outside messaging)".to_string(),
            };
            let _ = writeln!(
                rep,
                "  rank {r}: {wait_s}; last phase: {}; {} pending envelope(s)",
                if phase.is_empty() { "<none>" } else { &phase },
                pending.len()
            );
            for &(ctx, src, tag, bytes) in pending.iter().take(8) {
                let _ = writeln!(
                    rep,
                    "    pending: ctx {ctx} from rank {src}, {} ({bytes} B)",
                    describe_tag(tag)
                );
            }
            if pending.len() > 8 {
                let _ = writeln!(rep, "    ... and {} more", pending.len() - 8);
            }
        }
        *slot = Some(rep.clone());
        drop(slot);
        self.uni.abort();
        std::panic::panic_any(DeadlockError { report: rep });
    }

    fn open_envelope<T: Send + 'static>(&self, env: Envelope) -> (usize, Vec<T>) {
        self.clock.advance_to(env.arrival);
        let src_comm = self
            .comm_rank_of_world(env.src)
            .expect("sender is a member of this communicator");
        let data = env
            .data
            .downcast::<Vec<T>>()
            .unwrap_or_else(|_| panic!("type mismatch on recv (tag {})", env.tag));
        debug_assert_eq!(env.bytes, std::mem::size_of::<T>() * data.len());
        (src_comm, *data)
    }

    /// Blocking receive of a vector from communicator rank `src` with `tag`.
    ///
    /// `tag` must be below [`Comm::MAX_USER_TAG`].
    pub fn recv_vec<T: Send + 'static>(&self, src: usize, tag: u64) -> Vec<T> {
        Self::assert_user_tag(tag);
        self.recv_vec_raw(src, tag)
    }

    pub(crate) fn recv_vec_raw<T: Send + 'static>(&self, src: usize, tag: u64) -> Vec<T> {
        self.check_alive();
        let env = self.take_envelope(SrcSel::Exact(self.members[src]), tag);
        self.note_recv(&env, false);
        self.open_envelope(env).1
    }

    /// Blocking receive from any source; returns `(src_comm_rank, data)`.
    pub fn recv_any<T: Send + 'static>(&self, tag: u64) -> (usize, Vec<T>) {
        Self::assert_user_tag(tag);
        self.recv_any_raw(tag)
    }

    pub(crate) fn recv_any_raw<T: Send + 'static>(&self, tag: u64) -> (usize, Vec<T>) {
        self.check_alive();
        // Any-source matching must only consider members of this
        // communicator; ctx filtering in the mailbox guarantees that.
        let env = self.take_envelope(SrcSel::Any, tag);
        self.note_recv(&env, true);
        self.open_envelope(env)
    }

    /// Any-source receive whose match order is insensitive *by protocol*:
    /// the caller keys chunks by source and hard-asserts against duplicates
    /// (see [`crate::async_a2a`]). The happens-before edges are still
    /// recorded; only the wildcard-nondeterminism finding is suppressed.
    pub(crate) fn recv_any_unordered_raw<T: Send + 'static>(&self, tag: u64) -> (usize, Vec<T>) {
        self.check_alive();
        let env = self.take_envelope(SrcSel::Any, tag);
        self.note_recv(&env, false);
        self.open_envelope(env)
    }

    /// Blocking receive of the first message matching any `(src, tag)` pair
    /// in `specs` (communicator ranks). Returns `(src_comm_rank, tag, data)`.
    /// This is a true blocking wait: idle time advances with the message
    /// arrival, not with polling.
    pub(crate) fn recv_any_of_raw<T: Send + 'static>(
        &self,
        specs: &[(usize, u64)],
    ) -> (usize, u64, Vec<T>) {
        assert!(!specs.is_empty(), "recv_any_of needs at least one request");
        self.check_alive();
        self.inject_op_stall();
        let world_specs: Vec<(SrcSel, u64)> = specs
            .iter()
            .map(|&(s, t)| (SrcSel::Exact(self.members[s]), t))
            .collect();
        let env = self.blocking_take(&world_specs);
        self.note_recv(&env, false);
        let tag = env.tag;
        let (src, data) = self.open_envelope(env);
        (src, tag, data)
    }

    /// Non-blocking receive attempt from any source.
    pub fn try_recv_any<T: Send + 'static>(&self, tag: u64) -> Option<(usize, Vec<T>)> {
        Self::assert_user_tag(tag);
        self.try_recv_any_raw(tag)
    }

    pub(crate) fn try_recv_any_raw<T: Send + 'static>(&self, tag: u64) -> Option<(usize, Vec<T>)> {
        self.check_alive();
        let mb = &self.uni.mailboxes[self.world_rank()];
        mb.try_take(self.ctx, SrcSel::Any, tag).map(|env| {
            self.note_recv(&env, true);
            self.open_envelope(env)
        })
    }

    /// Non-blocking variant of [`Comm::recv_any_unordered_raw`].
    pub(crate) fn try_recv_any_unordered_raw<T: Send + 'static>(
        &self,
        tag: u64,
    ) -> Option<(usize, Vec<T>)> {
        self.check_alive();
        let mb = &self.uni.mailboxes[self.world_rank()];
        mb.try_take(self.ctx, SrcSel::Any, tag).map(|env| {
            self.note_recv(&env, false);
            self.open_envelope(env)
        })
    }

    /// Non-blocking receive attempt from a specific source rank.
    pub fn try_recv_from<T: Send + 'static>(&self, src: usize, tag: u64) -> Option<Vec<T>> {
        Self::assert_user_tag(tag);
        self.try_recv_from_raw(src, tag)
    }

    pub(crate) fn try_recv_from_raw<T: Send + 'static>(
        &self,
        src: usize,
        tag: u64,
    ) -> Option<Vec<T>> {
        self.check_alive();
        let mb = &self.uni.mailboxes[self.world_rank()];
        mb.try_take(self.ctx, SrcSel::Exact(self.members[src]), tag)
            .map(|env| {
                self.note_recv(&env, false);
                self.open_envelope(env).1
            })
    }

    /// Blocking receive of a single value.
    pub fn recv_val<T: Send + 'static>(&self, src: usize, tag: u64) -> T {
        Self::assert_user_tag(tag);
        self.recv_val_raw(src, tag)
    }

    pub(crate) fn recv_val_raw<T: Send + 'static>(&self, src: usize, tag: u64) -> T {
        let v = self.recv_vec_raw::<T>(src, tag);
        debug_assert_eq!(v.len(), 1, "recv_val expects single-element message");
        v.into_iter().next().expect("non-empty message")
    }

    pub(crate) fn ctx(&self) -> u64 {
        self.ctx
    }
}

impl std::fmt::Debug for Comm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Comm")
            .field("ctx", &self.ctx)
            .field("rank", &self.my_index)
            .field("size", &self.members.len())
            .field("world_rank", &self.world_rank())
            .finish()
    }
}
