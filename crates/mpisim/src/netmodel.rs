//! LogGP-style network cost model.
//!
//! The paper's evaluation ran on Edison's Cray Aries interconnect
//! (0.25–3.7 µs MPI latency, ~8 GB/s per-rank MPI bandwidth, Dragonfly
//! topology). We cannot reproduce that hardware, so figures whose *shape*
//! depends on network characteristics — the node-merging crossover of
//! Fig. 5a, the overlap crossover of Fig. 5b, the weak-scaling curves of
//! Figs. 7/8 — are driven by a simple analytic cost model charged to
//! per-rank virtual clocks:
//!
//! * each message costs the sender an *injection overhead* `o` plus
//!   serialization `bytes / bw_inject` on its own clock (CPU + NIC time,
//!   which is what makes many small messages expensive), and
//! * arrives at the receiver at `send_completion + latency + bytes / bw_link`.
//!
//! Intra-node messages use a separate (much cheaper) latency/bandwidth
//! pair, modelling shared-memory transport.
//!
//! The default constants are calibrated to the published Edison numbers;
//! they are deliberately exposed so experiments can sweep them (e.g. the
//! "slow network" configuration that motivates node-level merging).

use crate::topology::Topology;

/// Analytic cost model for point-to-point messages.
#[derive(Debug, Clone, PartialEq)]
pub struct NetModel {
    /// One-way latency for inter-node messages (seconds).
    pub latency: f64,
    /// Per-message injection overhead paid by the sender (seconds). This is
    /// the term that node-level merging amortizes: merging c ranks' data
    /// turns `c * c` messages per node pair into one.
    pub injection_overhead: f64,
    /// Sender-side injection bandwidth (bytes/second).
    pub bw_inject: f64,
    /// Link bandwidth for the in-flight portion (bytes/second).
    pub bw_link: f64,
    /// One-way latency for intra-node (shared-memory) messages (seconds).
    pub latency_local: f64,
    /// Per-message overhead for intra-node messages (seconds).
    pub injection_overhead_local: f64,
    /// Intra-node copy bandwidth (bytes/second).
    pub bw_local: f64,
    /// Per-outstanding-request progress cost of asynchronous receives
    /// (seconds). Each completion retrieved from an async all-to-all
    /// charges `async_test_overhead × remaining_requests`, modelling the
    /// `MPI_Test` sweeps and "competition for system resources" the paper
    /// gives as the reason overlapping stops paying off at large process
    /// counts (§2.6, Fig. 5b).
    pub async_test_overhead: f64,
}

impl NetModel {
    /// Model calibrated to published Edison / Cray Aries figures:
    /// ~1.5 µs MPI latency midpoint, 8 GB/s per-rank bandwidth, and
    /// shared-memory transport an order of magnitude cheaper.
    pub fn edison() -> Self {
        Self {
            latency: 1.5e-6,
            injection_overhead: 1.0e-6,
            bw_inject: 8.0e9,
            bw_link: 8.0e9,
            latency_local: 2.0e-7,
            injection_overhead_local: 1.0e-7,
            bw_local: 4.0e10,
            async_test_overhead: 5.0e-8,
        }
    }

    /// A deliberately slow commodity-cluster network (high latency, modest
    /// bandwidth). Used to demonstrate the regime where node-level merging
    /// is most profitable (Section 2.3 of the paper).
    pub fn slow_ethernet() -> Self {
        Self {
            latency: 5.0e-5,
            injection_overhead: 2.0e-5,
            bw_inject: 1.0e9,
            bw_link: 1.0e9,
            latency_local: 2.0e-7,
            injection_overhead_local: 1.0e-7,
            bw_local: 4.0e10,
            async_test_overhead: 1.0e-6,
        }
    }

    /// A model in which communication is free. Useful for isolating
    /// computation in unit tests.
    pub fn zero() -> Self {
        Self {
            latency: 0.0,
            injection_overhead: 0.0,
            bw_inject: f64::INFINITY,
            bw_link: f64::INFINITY,
            latency_local: 0.0,
            injection_overhead_local: 0.0,
            bw_local: f64::INFINITY,
            async_test_overhead: 0.0,
        }
    }

    /// Time the *sender's* clock advances while injecting one message of
    /// `bytes` from `src` to `dst`.
    pub fn inject_time(&self, topo: &Topology, src: usize, dst: usize, bytes: usize) -> f64 {
        if src == dst {
            return 0.0;
        }
        if topo.same_node(src, dst) {
            self.injection_overhead_local + bytes as f64 / self.bw_local
        } else {
            self.injection_overhead + bytes as f64 / self.bw_inject
        }
    }

    /// Additional in-flight time after injection completes before the
    /// message is available at the receiver.
    pub fn transit_time(&self, topo: &Topology, src: usize, dst: usize, bytes: usize) -> f64 {
        if src == dst {
            return 0.0;
        }
        if topo.same_node(src, dst) {
            self.latency_local
        } else {
            self.latency + bytes as f64 / self.bw_link
        }
    }

    /// Convenience: total one-way cost (inject + transit).
    pub fn message_time(&self, topo: &Topology, src: usize, dst: usize, bytes: usize) -> f64 {
        self.inject_time(topo, src, dst, bytes) + self.transit_time(topo, src, dst, bytes)
    }

    /// Inject and transit times with a per-message fault decision folded in:
    /// transient send-buffer exhaustion stalls the sender before injection
    /// completes; delay jitter extends the in-flight time. Self-messages
    /// remain free of the base cost but still suffer injected faults (a
    /// stalled sender stalls regardless of destination).
    pub(crate) fn perturbed_times(
        &self,
        topo: &Topology,
        src: usize,
        dst: usize,
        bytes: usize,
        f: &crate::faults::MessageFaults,
    ) -> (f64, f64) {
        (
            self.inject_time(topo, src, dst, bytes) + f.send_backoff_s,
            self.transit_time(topo, src, dst, bytes) + f.extra_transit_s,
        )
    }
}

impl Default for NetModel {
    fn default() -> Self {
        Self::edison()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::new(8, 4)
    }

    #[test]
    fn self_messages_are_free() {
        let m = NetModel::edison();
        assert_eq!(m.message_time(&topo(), 2, 2, 1 << 20), 0.0);
    }

    #[test]
    fn intra_node_cheaper_than_inter_node() {
        let m = NetModel::edison();
        let t = topo();
        let local = m.message_time(&t, 0, 1, 1 << 20);
        let remote = m.message_time(&t, 0, 4, 1 << 20);
        assert!(local < remote, "local {local} >= remote {remote}");
    }

    #[test]
    fn cost_monotone_in_bytes() {
        let m = NetModel::edison();
        let t = topo();
        assert!(m.message_time(&t, 0, 5, 1000) < m.message_time(&t, 0, 5, 10_000));
    }

    #[test]
    fn zero_model_is_free() {
        let m = NetModel::zero();
        let t = topo();
        assert_eq!(m.message_time(&t, 0, 5, usize::MAX / 2), 0.0);
    }

    #[test]
    fn small_messages_dominated_by_overhead() {
        let m = NetModel::edison();
        let t = topo();
        // For an 8-byte message the overhead terms should dwarf the
        // bandwidth term by orders of magnitude.
        let total = m.message_time(&t, 0, 5, 8);
        let bw_part = 8.0 / m.bw_inject + 8.0 / m.bw_link;
        assert!(bw_part < total * 0.01);
    }

    #[test]
    fn slow_network_slower_than_edison() {
        let t = topo();
        let bytes = 1 << 16;
        assert!(
            NetModel::slow_ethernet().message_time(&t, 0, 5, bytes)
                > NetModel::edison().message_time(&t, 0, 5, bytes)
        );
    }
}
