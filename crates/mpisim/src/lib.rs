//! # mpisim — a thread-based message-passing runtime with an MPI-like API
//!
//! The SDS-Sort paper (HPDC'16) evaluates on Edison, a Cray XC30, over MPI.
//! This crate is the substrate substitution for that environment: every
//! *rank* is an OS thread, communicators provide the MPI operations the
//! sorting algorithms use (point-to-point, `alltoallv`, splits,
//! node-local communicators, an asynchronous all-to-all), and two
//! simulation facilities reproduce the hardware-dependent aspects of the
//! evaluation:
//!
//! * **virtual clocks + a LogGP-style network model** ([`NetModel`]):
//!   computation advances only the local clock; messages carry timestamps
//!   and advance the receiver, so the maximum clock at the end of a run is
//!   the modelled makespan on the configured machine;
//! * **per-rank memory budgets** ([`memory::MemoryTracker`]): reproduce
//!   the out-of-memory failures the paper reports for HykSort on skewed
//!   data, without exhausting host RAM.
//!
//! ## Quick example
//!
//! ```
//! use mpisim::World;
//!
//! let report = World::new(4).cores_per_node(2).run(|comm| {
//!     // Every rank contributes its rank id; allreduce sums them.
//!     comm.allreduce(comm.rank() as u64, |a, b| a + b)
//! });
//! assert!(report.results.iter().all(|&s| s == 6));
//! ```

#![warn(missing_docs)]

pub mod abstraction;
pub mod async_a2a;
pub mod check;
pub mod clock;
pub mod collectives;
pub mod comm;
pub mod error;
pub mod faults;
pub mod mailbox;
pub mod memory;
pub mod netmodel;
pub mod p2p;
pub mod runtime;
pub mod split;
pub mod topology;
pub mod trace;
pub mod universe;

pub use async_a2a::AsyncAlltoallv;
pub use check::RaceError;
pub use clock::VirtualClock;
pub use comm::Comm;
pub use error::{CommError, OomError};
pub use faults::FaultSpec;
pub use netmodel::NetModel;
pub use p2p::RecvRequest;
pub use runtime::{World, WorldReport};
pub use topology::Topology;
pub use trace::{PhaseTraffic, Tracer};
pub use universe::{DeadlockError, Universe};

// Re-exported so downstream crates can name `WorldReport::telemetry` types
// without a direct dependency.
pub use telemetry;

// The backend-neutral trait this simulator implements (see `abstraction`),
// re-exported so tests and drivers can bring it into scope from here.
pub use ::comm::{AsyncExchange, Communicator};
