//! Error types for the message-passing runtime.

use std::fmt;

/// Error returned when a rank exceeds its simulated memory budget.
///
/// The SDS-Sort paper reports HykSort crashing with out-of-memory errors on
/// skewed inputs because load imbalance concentrates most of the data on a
/// few ranks. We reproduce that failure mode with a per-rank byte budget
/// (see [`crate::memory`]); an allocation request that would exceed the
/// budget yields this error instead of actually exhausting host RAM.
///
/// The type itself lives in the backend-neutral `comm` crate so algorithm
/// code generic over [`::comm::Communicator`] can name it without depending
/// on this simulator.
pub use ::comm::OomError;

/// Errors surfaced by communicator operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// Another rank panicked; the world is shutting down.
    Aborted,
    /// A per-rank memory budget was exceeded.
    Oom(OomError),
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::Aborted => write!(f, "world aborted: another rank panicked"),
            CommError::Oom(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CommError {}

impl From<OomError> for CommError {
    fn from(e: OomError) -> Self {
        CommError::Oom(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oom_display_mentions_rank_and_sizes() {
        let e = OomError {
            rank: 3,
            requested: 100,
            available: 10,
            budget: 50,
        };
        let s = e.to_string();
        assert!(s.contains("rank 3"));
        assert!(s.contains("100 B"));
        assert!(s.contains("50 B"));
    }

    #[test]
    fn comm_error_from_oom() {
        let oom = OomError {
            rank: 0,
            requested: 1,
            available: 0,
            budget: 0,
        };
        let ce: CommError = oom.clone().into();
        assert_eq!(ce, CommError::Oom(oom));
    }

    #[test]
    fn aborted_display() {
        assert!(CommError::Aborted.to_string().contains("panicked"));
    }
}
