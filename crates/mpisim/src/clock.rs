//! Per-rank virtual clocks.
//!
//! Every rank in the simulated world carries a virtual clock measured in
//! seconds. Local computation advances only the local clock; messages carry
//! their completion timestamp, and a receive advances the receiver's clock
//! to at least the message arrival time. The maximum clock value across
//! ranks at the end of a run is therefore a conservative estimate of the
//! parallel makespan under the configured [`crate::netmodel::NetModel`] —
//! exactly the quantity the paper's figures plot.
//!
//! Computation can be charged two ways:
//!
//! * [`VirtualClock::measure`] runs a closure, measures its wall time, and
//!   charges it (scaled by `compute_scale`). Appropriate when ranks are not
//!   heavily oversubscribed.
//! * [`VirtualClock::charge`] adds an analytically modelled duration.
//!   Appropriate for scaling studies where thread oversubscription would
//!   distort wall-clock measurements.

use std::cell::Cell;
use std::time::Instant;

/// A single rank's virtual clock. Not shared across threads: each rank
/// thread owns its clock and communicates timestamps through envelopes.
#[derive(Debug)]
pub struct VirtualClock {
    now: Cell<f64>,
    compute_scale: f64,
}

impl VirtualClock {
    /// New clock at time zero. `compute_scale` multiplies wall-clock
    /// durations recorded by [`measure`](Self::measure); use it to model a
    /// faster or slower CPU than the host.
    pub fn new(compute_scale: f64) -> Self {
        assert!(compute_scale.is_finite() && compute_scale >= 0.0);
        Self {
            now: Cell::new(0.0),
            compute_scale,
        }
    }

    /// Current virtual time in seconds.
    pub fn now(&self) -> f64 {
        self.now.get()
    }

    /// Advance the clock by a modelled duration (seconds).
    pub fn charge(&self, seconds: f64) {
        debug_assert!(seconds >= 0.0, "cannot charge negative time");
        self.now.set(self.now.get() + seconds.max(0.0));
    }

    /// Advance the clock to at least `t` (used when a message arrives).
    pub fn advance_to(&self, t: f64) {
        if t > self.now.get() {
            self.now.set(t);
        }
    }

    /// Run `f`, measure its wall time, and charge it scaled by
    /// `compute_scale`. Returns `f`'s result.
    pub fn measure<R>(&self, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.charge(start.elapsed().as_secs_f64() * self.compute_scale);
        out
    }

    /// The configured compute scale.
    pub fn compute_scale(&self) -> f64 {
        self.compute_scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(VirtualClock::new(1.0).now(), 0.0);
    }

    #[test]
    fn charge_accumulates() {
        let c = VirtualClock::new(1.0);
        c.charge(1.5);
        c.charge(0.5);
        assert!((c.now() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn advance_to_is_monotone() {
        let c = VirtualClock::new(1.0);
        c.charge(3.0);
        c.advance_to(2.0); // earlier arrival: no effect
        assert_eq!(c.now(), 3.0);
        c.advance_to(5.0);
        assert_eq!(c.now(), 5.0);
    }

    #[test]
    fn measure_charges_positive_time() {
        let c = VirtualClock::new(1.0);
        let v: u64 = c.measure(|| (0..100_000u64).sum());
        assert!(v > 0);
        assert!(c.now() > 0.0);
    }

    #[test]
    fn measure_respects_scale() {
        let c = VirtualClock::new(0.0);
        c.measure(|| std::hint::black_box((0..10_000u64).sum::<u64>()));
        assert_eq!(c.now(), 0.0, "zero scale must charge nothing");
    }

    #[test]
    #[should_panic]
    fn negative_scale_rejected() {
        VirtualClock::new(-1.0);
    }
}
