//! Regressions for the exchange/collective edge-case fixes and coverage of
//! the fault-injection + deadlock-detection layer.
//!
//! The first three tests reproduce bugs that existed before this layer:
//! user tags colliding with the collective tag space (silently stealing
//! in-flight async-exchange chunks), and `p2p::wait_any` busy-poll
//! charging unbounded schedule-dependent virtual time while idle.

use mpisim::{Comm, DeadlockError, FaultSpec, NetModel, World};
use std::time::Duration;

// ---- user-tag / collective-tag isolation ------------------------------

#[test]
#[should_panic(expected = "outside the user tag space")]
fn send_at_tag_boundary_is_rejected() {
    World::new(1).net(NetModel::zero()).run(|comm| {
        // Exactly MAX_USER_TAG: the first tag a collective can own. Before
        // the guard this message could be matched by an in-flight
        // collective's any-source receive and corrupt it silently.
        comm.send_vec(0, Comm::MAX_USER_TAG, vec![1u8]);
    });
}

#[test]
#[should_panic(expected = "outside the user tag space")]
fn recv_at_collective_tag_is_rejected() {
    World::new(1).net(NetModel::zero()).run(|comm| {
        let _ = comm.try_recv_from::<u8>(0, Comm::MAX_USER_TAG + 5);
    });
}

#[test]
#[should_panic(expected = "outside the user tag space")]
fn irecv_at_collective_tag_is_rejected() {
    World::new(2).net(NetModel::zero()).run(|comm| {
        if comm.rank() == 0 {
            let _ = comm.irecv::<u8>(1, Comm::MAX_USER_TAG + (7 << 12));
        }
    });
}

#[test]
fn max_legal_user_tag_works() {
    let report = World::new(2).net(NetModel::zero()).run(|comm| {
        let tag = Comm::MAX_USER_TAG - 1;
        if comm.rank() == 0 {
            comm.send_vec(1, tag, vec![42u8]);
            0
        } else {
            comm.recv_vec::<u8>(0, tag)[0]
        }
    });
    assert_eq!(report.results, vec![0, 42]);
}

// ---- wait_any idle-time accounting ------------------------------------

#[test]
fn wait_any_does_not_charge_while_idle() {
    // The sender wall-sleeps before sending. The old wait_any busy-polled
    // MPI_Test sweeps during that window, charging async_test_overhead per
    // sweep — virtual time grew with *wall* time and thread scheduling.
    // Blocking wait charges exactly one sweep.
    let report = World::new(2).net(NetModel::edison()).run(|comm| {
        if comm.rank() == 0 {
            let mut reqs = vec![comm.irecv::<u64>(1, 3)];
            let (_, data) = mpisim::p2p::wait_any(comm, &mut reqs).expect("one request");
            assert_eq!(data, vec![7]);
            comm.clock().now()
        } else {
            std::thread::sleep(Duration::from_millis(80));
            comm.isend(0, 3, vec![7u64]);
            0.0
        }
    });
    // One test sweep (5e-8 s on the edison model) plus the message cost —
    // microseconds. 80 ms of busy-poll sweeps would exceed this by orders
    // of magnitude.
    assert!(
        report.results[0] < 1e-4,
        "receiver idle-charged {} virtual seconds",
        report.results[0]
    );
}

// ---- deadlock detection ------------------------------------------------

fn expect_deadlock(world: World, f: impl Fn(&mut Comm) + Send + Sync) -> String {
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        world.run(|comm| f(comm));
    }))
    .expect_err("run must deadlock");
    match err.downcast::<DeadlockError>() {
        Ok(e) => e.report,
        Err(other) => panic!("expected DeadlockError, got {other:?}"),
    }
}

#[test]
fn silent_deadlock_becomes_diagnostic_report() {
    let report = expect_deadlock(
        World::new(3)
            .net(NetModel::zero())
            .collective_timeout(Duration::from_millis(250)),
        |comm| {
            comm.trace_phase("exchange");
            // Everyone waits for a message nobody sends.
            let peer = (comm.rank() + 1) % comm.size();
            let _ = comm.recv_vec::<u8>(peer, 9);
        },
    );
    for r in 0..3 {
        assert!(
            report.contains(&format!("rank {r}")),
            "report names rank {r}:\n{report}"
        );
    }
    assert!(
        report.contains("user tag 9"),
        "report decodes the tag:\n{report}"
    );
    assert!(
        report.contains("exchange"),
        "report names the last phase:\n{report}"
    );
    assert!(report.contains("no message progress"), "{report}");
}

#[test]
fn deadlock_detected_when_one_rank_exits_early() {
    // Rank 2 returns without joining the barrier: a mismatched collective.
    // A finished rank makes no further progress, so the others are provably
    // stuck — the detector must fire rather than hang.
    let report = expect_deadlock(
        World::new(3)
            .net(NetModel::zero())
            .collective_timeout(Duration::from_millis(250)),
        |comm| {
            if comm.rank() != 2 {
                comm.barrier();
            }
        },
    );
    assert!(
        report.contains("collective #"),
        "barrier wait decodes as a collective tag:\n{report}"
    );
    assert!(
        report.contains("finished"),
        "the exited rank is identified:\n{report}"
    );
}

#[test]
fn no_false_positive_under_load() {
    // A healthy all-to-all with a short window: progress keeps happening,
    // the detector must stay silent even though single waits exceed the
    // window occasionally under scheduling noise.
    let report = World::new(4)
        .net(NetModel::edison())
        .collective_timeout(Duration::from_millis(200))
        .run(|comm| {
            let p = comm.size();
            let me = comm.rank();
            for round in 0..20u64 {
                let data: Vec<u64> = (0..p).map(|d| me as u64 * 100 + d as u64 + round).collect();
                let got = comm.alltoall(&data);
                assert_eq!(got.len(), p);
                comm.barrier();
            }
            1u8
        });
    assert_eq!(report.results, vec![1; 4]);
}

// ---- fault injection at the mpisim level -------------------------------

#[test]
fn faulted_collectives_still_correct() {
    let spec = FaultSpec::parse(
        "seed=21,delay=0.5:1e-4,reorder=0.5:8,stall=1:0.2:1e-4,sendbuf=0.3:2:1e-5",
    )
    .expect("spec");
    let report = World::new(5)
        .net(NetModel::edison())
        .faults(spec)
        .run(|comm| {
            let p = comm.size();
            let me = comm.rank();
            // allreduce + alltoallv under heavy message faults
            let sum = comm.allreduce(me as u64, |a, b| a + b);
            assert_eq!(sum as usize, p * (p - 1) / 2);
            let counts = vec![2usize; p];
            let data: Vec<u64> = (0..p).flat_map(|d| vec![(me * 10 + d) as u64; 2]).collect();
            let (got, rcounts) = comm.alltoallv(&data, &counts);
            let expect: Vec<u64> = (0..p).flat_map(|s| vec![(s * 10 + me) as u64; 2]).collect();
            assert_eq!(got, expect, "per-source chunks survive reordering faults");
            assert_eq!(rcounts, vec![2; p]);
            comm.barrier();
            1u8
        });
    assert_eq!(report.results, vec![1; 5]);
}

#[test]
fn fault_clocks_are_deterministic() {
    let spec = FaultSpec::parse("seed=33,delay=0.6:2e-4,stall=2:0.4:1e-4,sendbuf=0.4:3:2e-5")
        .expect("spec");
    let run = || {
        World::new(4)
            .net(NetModel::edison())
            .faults(spec)
            .run(|comm| {
                let p = comm.size();
                let me = comm.rank();
                for _ in 0..5 {
                    let data: Vec<u64> = (0..p).map(|d| (me + d) as u64).collect();
                    let _ = comm.alltoall(&data);
                }
                comm.clock().now().to_bits()
            })
            .results
    };
    assert_eq!(run(), run(), "same seed, same program → identical clocks");
}

#[test]
fn faults_inflate_virtual_time_but_not_wall_behaviour() {
    let clean = World::new(4).net(NetModel::edison()).run(|comm| {
        let p = comm.size();
        let data: Vec<u64> = (0..p).map(|d| d as u64).collect();
        for _ in 0..5 {
            let _ = comm.alltoall(&data);
        }
        comm.clock().now()
    });
    let spec = FaultSpec::parse("seed=1,delay=1.0:1e-3").expect("spec");
    let faulted = World::new(4)
        .net(NetModel::edison())
        .faults(spec)
        .run(|comm| {
            let p = comm.size();
            let data: Vec<u64> = (0..p).map(|d| d as u64).collect();
            for _ in 0..5 {
                let _ = comm.alltoall(&data);
            }
            comm.clock().now()
        });
    let clean_max = clean.results.iter().copied().fold(0.0f64, f64::max);
    let faulted_max = faulted.results.iter().copied().fold(0.0f64, f64::max);
    assert!(
        faulted_max > clean_max,
        "always-on delay must show up in virtual time"
    );
    // Bound: every message can gain at most delay_max_s.
    let bound = clean_max + faulted.messages as f64 * 1e-3 + 1e-6;
    assert!(faulted_max <= bound, "{faulted_max} > {bound}");
}
