//! Integration tests: world execution semantics — panic propagation,
//! virtual clocks, memory budgets, point-to-point ordering.

use mpisim::{NetModel, World};

#[test]
fn results_in_rank_order() {
    let report = World::new(8)
        .net(NetModel::zero())
        .run(|comm| comm.rank() * 2);
    assert_eq!(report.results, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    assert_eq!(report.per_rank_time.len(), 8);
}

#[test]
fn p2p_fifo_between_pair() {
    let report = World::new(2).net(NetModel::zero()).run(|comm| {
        if comm.rank() == 0 {
            for i in 0..10u32 {
                comm.send_val(1, 7, i);
            }
            Vec::new()
        } else {
            (0..10)
                .map(|_| comm.recv_val::<u32>(0, 7))
                .collect::<Vec<_>>()
        }
    });
    assert_eq!(report.results[1], (0..10).collect::<Vec<u32>>());
}

#[test]
fn tags_demultiplex() {
    let report = World::new(2).net(NetModel::zero()).run(|comm| {
        if comm.rank() == 0 {
            comm.send_val(1, 1, 10u32);
            comm.send_val(1, 2, 20u32);
            (0, 0)
        } else {
            // receive in reverse tag order: matching must be by tag
            let b = comm.recv_val::<u32>(0, 2);
            let a = comm.recv_val::<u32>(0, 1);
            (a, b)
        }
    });
    assert_eq!(report.results[1], (10, 20));
}

#[test]
#[should_panic(expected = "deliberate rank failure")]
fn rank_panic_propagates() {
    World::new(4).net(NetModel::zero()).run(|comm| {
        if comm.rank() == 2 {
            panic!("deliberate rank failure");
        }
        // Other ranks block on a message that never comes; the abort
        // machinery must wake them rather than deadlock.
        let _: Vec<u8> = comm.recv_vec(2, 99);
    });
}

#[test]
fn virtual_clock_advances_with_messages() {
    let report = World::new(2)
        .cores_per_node(1)
        .net(NetModel::edison())
        .run(|comm| {
            if comm.rank() == 0 {
                comm.send_vec(1, 0, vec![0u8; 1 << 20]);
            } else {
                let _: Vec<u8> = comm.recv_vec(0, 0);
            }
            comm.clock().now()
        });
    // Receiver clock must be at least latency + bytes/bw ≈ 131 µs.
    let expect_min = 1e-4;
    assert!(
        report.results[1] > expect_min,
        "receiver clock {} too small",
        report.results[1]
    );
    assert!(report.makespan >= report.results[1]);
}

#[test]
fn barrier_synchronizes_clocks() {
    let report = World::new(4)
        .net(NetModel::edison())
        .compute_scale(0.0)
        .run(|comm| {
            if comm.rank() == 0 {
                comm.clock().charge(1.0); // one slow rank
            }
            comm.barrier();
            comm.clock().now()
        });
    for t in report.results {
        assert!(
            t >= 1.0,
            "barrier must propagate the slowest clock, got {t}"
        );
    }
}

#[test]
fn charged_compute_contributes_to_makespan() {
    let report = World::new(3).net(NetModel::zero()).run(|comm| {
        comm.clock().charge(0.5 * (comm.rank() + 1) as f64);
    });
    assert!((report.makespan - 1.5).abs() < 1e-9);
}

#[test]
fn memory_budget_enforced() {
    let report = World::new(2)
        .net(NetModel::zero())
        .memory_budget(1000)
        .run(|comm| {
            let first = comm.try_alloc(800);
            let second = comm.try_alloc(800);
            if first.is_ok() {
                comm.free(800);
            }
            (first.is_ok(), second.is_ok())
        });
    for (a, b) in report.results {
        assert!(a);
        assert!(!b, "second allocation must exceed the budget");
    }
    assert!(report.max_memory_high_water >= 800);
}

#[test]
fn message_stats_counted() {
    let report = World::new(2).net(NetModel::zero()).run(|comm| {
        if comm.rank() == 0 {
            comm.send_vec(1, 0, vec![0u64; 100]);
        } else {
            let _: Vec<u64> = comm.recv_vec(0, 0);
        }
    });
    assert_eq!(report.messages, 1);
    assert_eq!(report.bytes, 800);
}

#[test]
fn intra_node_messages_cheaper_in_model() {
    let run = |cores: usize| {
        World::new(2)
            .cores_per_node(cores)
            .net(NetModel::edison())
            .compute_scale(0.0)
            .run(|comm| {
                if comm.rank() == 0 {
                    comm.send_vec(1, 0, vec![0u8; 1 << 22]);
                } else {
                    let _: Vec<u8> = comm.recv_vec(0, 0);
                }
            })
            .makespan
    };
    let same_node = run(2); // both ranks on node 0
    let diff_node = run(1); // one rank per node
    assert!(
        same_node < diff_node,
        "intra-node {same_node} should be cheaper than inter-node {diff_node}"
    );
}

#[test]
fn tracing_captures_phased_traffic() {
    let report = World::new(4)
        .cores_per_node(2)
        .net(NetModel::zero())
        .trace(true)
        .run(|comm| {
            comm.trace_phase("warmup");
            comm.send_val((comm.rank() + 1) % 4, 1, 1u8);
            let _: u8 = comm.recv_val((comm.rank() + 3) % 4, 1);
            // Phases are world-global: without a barrier a fast rank could flip
            // the phase before a slow rank's warmup send is recorded.
            comm.barrier();
            comm.trace_phase("bulk");
            let counts = vec![2usize; 4];
            let data = vec![comm.rank() as u64; 8];
            comm.alltoallv(&data, &counts);
        });
    let phases: Vec<&str> = report
        .trace_phases
        .iter()
        .map(|(n, _)| n.as_str())
        .collect();
    assert_eq!(phases, vec!["warmup", "bulk"]);
    let warmup = &report.trace_phases[0].1;
    assert!(
        warmup.total_messages() >= 4,
        "one ring message per rank plus barrier traffic"
    );
    let bulk = &report.trace_phases[1].1;
    // alltoallv: per rank, 1 count msg to 3 peers + 3 data msgs = 24 total
    assert!(bulk.total_messages() >= 24);
    assert!(bulk.total_bytes() > warmup.total_bytes());
    // intra-node pairs exist with 2 cores/node
    assert!(bulk.internode_messages(&report.topology) < bulk.total_messages());
}

#[test]
fn tracing_disabled_by_default() {
    let report = World::new(2).net(NetModel::zero()).run(|comm| {
        if comm.rank() == 0 {
            comm.send_val(1, 0, 1u8);
        } else {
            let _: u8 = comm.recv_val(0, 0);
        }
    });
    assert!(report.trace_phases.is_empty());
}
