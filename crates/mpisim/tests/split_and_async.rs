//! Integration tests: communicator splits (color/key, shared-node, node
//! leaders) and the asynchronous all-to-all used for exchange/compute
//! overlap.

use mpisim::{NetModel, World};

fn world(p: usize, cores: usize) -> World {
    World::new(p).cores_per_node(cores).net(NetModel::zero())
}

#[test]
fn split_by_parity() {
    let report = world(8, 4).run(|comm| {
        let color = (comm.rank() % 2) as i64;
        let sub = comm
            .split(Some(color), comm.rank() as i64)
            .expect("in a group");
        (sub.rank(), sub.size(), sub.world_rank())
    });
    for (old, (new_rank, size, world)) in report.results.into_iter().enumerate() {
        assert_eq!(size, 4);
        assert_eq!(new_rank, old / 2);
        assert_eq!(world, old);
    }
}

#[test]
fn split_undefined_color_returns_none() {
    let report = world(6, 3).run(|comm| {
        let color = if comm.rank() < 2 { Some(0) } else { None };
        comm.split(color, 0).map(|c| c.size())
    });
    assert_eq!(
        report.results,
        vec![Some(2), Some(2), None, None, None, None]
    );
}

#[test]
fn split_key_reorders_ranks() {
    let report = world(4, 4).run(|comm| {
        // reverse order via descending key
        let key = -(comm.rank() as i64);
        let sub = comm.split(Some(0), key).unwrap();
        sub.rank()
    });
    assert_eq!(report.results, vec![3, 2, 1, 0]);
}

#[test]
fn split_comm_isolated_from_parent_traffic() {
    let report = world(4, 4).run(|comm| {
        let sub = comm
            .split(Some((comm.rank() / 2) as i64), comm.rank() as i64)
            .unwrap();
        // same tag on parent and child communicators must not cross-match
        if comm.rank() == 0 {
            comm.send_val(1, 5, 111u32);
        }
        if sub.rank() == 0 {
            sub.send_val(1, 5, 222u32);
        }
        if comm.rank() == 1 {
            let from_sub = sub.recv_val::<u32>(0, 5);
            let from_parent = comm.recv_val::<u32>(0, 5);
            return (from_parent, from_sub);
        }
        if sub.rank() == 1 {
            let from_sub = sub.recv_val::<u32>(0, 5);
            return (0, from_sub);
        }
        (0, 0)
    });
    assert_eq!(report.results[1], (111, 222));
    assert_eq!(report.results[3], (0, 222));
}

#[test]
fn shared_node_split_groups_by_node() {
    let report = world(8, 3).run(|comm| {
        let local = comm.split_shared_node();
        (comm.node(), local.rank(), local.size())
    });
    // nodes: [0,1,2], [3,4,5], [6,7]
    let expect = [
        (0, 0, 3),
        (0, 1, 3),
        (0, 2, 3),
        (1, 0, 3),
        (1, 1, 3),
        (1, 2, 3),
        (2, 0, 2),
        (2, 1, 2),
    ];
    assert_eq!(report.results, expect);
}

#[test]
fn refine_comm_gives_leaders_and_locals() {
    let report = world(8, 4).run(|comm| {
        let (cg, cl) = comm.refine_comm();
        let leader = cl.rank() == 0;
        assert_eq!(leader, cg.is_some());
        (leader, cg.map(|c| (c.rank(), c.size())), cl.size())
    });
    assert_eq!(report.results[0], (true, Some((0, 2)), 4));
    assert_eq!(report.results[4], (true, Some((1, 2)), 4));
    for r in [1, 2, 3, 5, 6, 7] {
        assert!(!report.results[r].0);
        assert_eq!(report.results[r].2, 4);
    }
}

#[test]
fn collectives_work_on_split_comms() {
    let report = world(6, 3).run(|comm| {
        let local = comm.split_shared_node();
        local.allreduce(comm.rank() as u64, |a, b| a + b)
    });
    // node 0 holds ranks 0,1,2 (sum 3); node 1 holds 3,4,5 (sum 12)
    assert_eq!(report.results, vec![3, 3, 3, 12, 12, 12]);
}

#[test]
fn async_alltoallv_delivers_all_chunks() {
    let p = 5;
    let report = world(p, 4).run(move |comm| {
        let me = comm.rank();
        let counts: Vec<usize> = (0..p).map(|dst| if dst == me { 2 } else { 1 }).collect();
        let mut data = Vec::new();
        for (dst, &c) in counts.iter().enumerate() {
            data.extend(std::iter::repeat_n((me * 10 + dst) as u32, c));
        }
        let mut pending = comm.alltoallv_async(&data, &counts);
        assert_eq!(pending.total_recv(), p + 1);
        let mut got: Vec<(usize, Vec<u32>)> = Vec::new();
        while let Some(hit) = pending.wait_any(comm) {
            got.push(hit);
        }
        assert!(
            pending.wait_any(comm).is_none(),
            "drained handle returns None"
        );
        // first delivered chunk must be the local one
        assert_eq!(got[0].0, me);
        got.sort_by_key(|&(src, _)| src);
        got
    });
    for (rank, got) in report.results.into_iter().enumerate() {
        assert_eq!(got.len(), p);
        for (src, chunk) in got {
            let expect_len = if src == rank { 2 } else { 1 };
            assert_eq!(chunk, vec![(src * 10 + rank) as u32; expect_len]);
        }
    }
}

#[test]
fn async_alltoallv_empty_chunks_skipped() {
    let p = 4;
    let report = world(p, 4).run(move |comm| {
        // ring: each rank sends 3 items to (rank+1)%p only
        let me = comm.rank();
        let mut counts = vec![0usize; p];
        counts[(me + 1) % p] = 3;
        let data = vec![me as u64; 3];
        let mut pending = comm.alltoallv_async(&data, &counts);

        pending.wait_all(comm)
    });
    for (rank, chunks) in report.results.into_iter().enumerate() {
        assert_eq!(chunks.len(), 1, "exactly one non-empty chunk");
        let (src, data) = &chunks[0];
        assert_eq!(*src, (rank + 4 - 1) % 4);
        assert_eq!(data, &vec![*src as u64; 3]);
    }
}

#[test]
fn nested_splits() {
    let report = world(8, 2).run(|comm| {
        let half = comm
            .split(Some((comm.rank() / 4) as i64), comm.rank() as i64)
            .unwrap();
        let quarter = half
            .split(Some((half.rank() / 2) as i64), half.rank() as i64)
            .unwrap();
        quarter.allreduce(comm.rank() as u64, |a, b| a + b)
    });
    assert_eq!(report.results, vec![1, 1, 5, 5, 9, 9, 13, 13]);
}
