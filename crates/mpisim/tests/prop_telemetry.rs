//! Property tests: the telemetry recorder agrees with the `Tracer` traffic
//! matrices — totals, per-phase splits, and inter-node classification —
//! for arbitrary all-to-all length matrices and arbitrary rank→node maps.

use mpisim::{NetModel, Topology, World};
use proptest::prelude::*;

fn count_for(seed: u64, p: usize, src: usize, dst: usize) -> usize {
    ((seed >> ((src * p + dst) % 48)) % 7) as usize
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn recorder_matches_tracer_for_arbitrary_alltoallv(
        p in 2usize..6,
        cores in 1usize..4,
        seed in any::<u64>(),
    ) {
        let report = World::new(p)
            .cores_per_node(cores)
            .net(NetModel::zero())
            .trace(true)
            .telemetry(true)
            .run(move |comm| {
                comm.trace_phase("bulk");
                let me = comm.rank();
                let counts: Vec<usize> =
                    (0..p).map(|dst| count_for(seed, p, me, dst)).collect();
                let mut data = Vec::new();
                for (dst, &c) in counts.iter().enumerate() {
                    data.extend(std::iter::repeat_n((me * 100 + dst) as u64, c));
                }
                comm.alltoallv(&data, &counts);
            });
        let snapshot = report.telemetry.as_ref().expect("telemetry enabled");
        // Whole-run totals: every traced message is also recorded.
        let traced_msgs: u64 =
            report.trace_phases.iter().map(|(_, t)| t.total_messages()).sum();
        let traced_bytes: u64 =
            report.trace_phases.iter().map(|(_, t)| t.total_bytes()).sum();
        prop_assert_eq!(snapshot.total_messages(), traced_msgs);
        prop_assert_eq!(snapshot.total_bytes(), traced_bytes);
        // Per-phase totals and inter-node splits agree with the tracer's
        // matrix folded through the same topology.
        for (name, traffic) in &report.trace_phases {
            let phase = snapshot
                .phases
                .iter()
                .find(|ph| &ph.name == name)
                .expect("recorder saw the same phase");
            prop_assert_eq!(phase.messages, traffic.total_messages());
            prop_assert_eq!(phase.bytes, traffic.total_bytes());
            prop_assert_eq!(
                phase.internode_messages,
                traffic.internode_messages(&report.topology)
            );
            prop_assert_eq!(
                phase.internode_bytes,
                traffic.internode_bytes(&report.topology)
            );
        }
    }

    #[test]
    fn internode_split_respects_custom_node_maps(
        p in 2usize..6,
        nodes in 1usize..4,
        seed in any::<u64>(),
    ) {
        // Deterministic pseudo-random rank→node map, made dense by
        // construction (node ids re-indexed in first-appearance order).
        let raw: Vec<usize> = (0..p).map(|r| ((seed >> (r % 48)) as usize) % nodes).collect();
        let mut dense: Vec<usize> = Vec::new();
        let mut ids: Vec<usize> = Vec::new();
        for &n in &raw {
            let id = match ids.iter().position(|&x| x == n) {
                Some(i) => i,
                None => {
                    ids.push(n);
                    ids.len() - 1
                }
            };
            dense.push(id);
        }
        let map = dense.clone();
        let report = World::new(p)
            .node_map(map.clone())
            .net(NetModel::zero())
            .trace(true)
            .telemetry(true)
            .run(move |comm| {
                comm.trace_phase("ring");
                let dst = (comm.rank() + 1) % p;
                let src = (comm.rank() + p - 1) % p;
                comm.send_vec(dst, 7, vec![comm.rank() as u64]);
                let _ = comm.recv_vec::<u64>(src, 7);
            });
        let snapshot = report.telemetry.as_ref().expect("telemetry enabled");
        let topo = Topology::with_node_map(map.clone());
        // Reference count straight off the ring structure.
        let expect_internode =
            (0..p).filter(|&r| map[r] != map[(r + 1) % p]).count() as u64;
        let traffic = report
            .trace_phases
            .iter()
            .find(|(n, _)| n == "ring")
            .map(|(_, t)| t)
            .expect("traced ring phase");
        prop_assert_eq!(traffic.internode_messages(&topo), expect_internode);
        let phase = snapshot
            .phases
            .iter()
            .find(|ph| ph.name == "ring")
            .expect("recorded ring phase");
        prop_assert_eq!(phase.internode_messages, expect_internode);
        prop_assert_eq!(snapshot.total_internode_messages(), expect_internode);
    }
}
