//! Property tests: collectives agree with sequential reference
//! computations for arbitrary inputs, sizes, and roots.

use mpisim::{NetModel, World};
use proptest::collection::vec;
use proptest::prelude::*;

fn world(p: usize) -> World {
    World::new(p).cores_per_node(3).net(NetModel::zero())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn alltoallv_routes_arbitrary_matrices(
        p in 2usize..6,
        seed in any::<u64>(),
    ) {
        // counts[src][dst] derived deterministically from the seed so all
        // ranks can compute the full matrix.
        let report = world(p).run(move |comm| {
            let me = comm.rank();
            let count = |src: usize, dst: usize| -> usize {
                ((seed >> ((src * p + dst) % 48)) % 7) as usize
            };
            let counts: Vec<usize> = (0..p).map(|dst| count(me, dst)).collect();
            let mut data = Vec::new();
            for (dst, &c) in counts.iter().enumerate() {
                data.extend(std::iter::repeat_n((me * 100 + dst) as u64, c));
            }
            comm.alltoallv(&data, &counts)
        });
        for (rank, (recv, rcounts)) in report.results.into_iter().enumerate() {
            let count = |src: usize, dst: usize| -> usize {
                ((seed >> ((src * p + dst) % 48)) % 7) as usize
            };
            let expect_counts: Vec<usize> = (0..p).map(|src| count(src, rank)).collect();
            prop_assert_eq!(&rcounts, &expect_counts);
            let mut expect = Vec::new();
            for (src, &c) in expect_counts.iter().enumerate() {
                expect.extend(std::iter::repeat_n((src * 100 + rank) as u64, c));
            }
            prop_assert_eq!(recv, expect);
        }
    }

    #[test]
    fn bcast_gather_roundtrip(
        p in 1usize..6,
        root_sel in any::<usize>(),
        payload in vec(any::<u32>(), 0..40),
    ) {
        let root = root_sel % p;
        let payload2 = payload.clone();
        let report = world(p).run(move |comm| {
            let data = (comm.rank() == root).then(|| payload2.clone());
            let got = comm.bcast(root, data);
            // everyone contributes the broadcast back; root checks
            comm.gatherv(root, &got)
        });
        for (rank, res) in report.results.into_iter().enumerate() {
            if rank == root {
                let parts = res.expect("root");
                prop_assert_eq!(parts.len(), p);
                for part in parts {
                    prop_assert_eq!(&part, &payload);
                }
            } else {
                prop_assert!(res.is_none());
            }
        }
    }

    #[test]
    fn reduce_matches_sequential_fold(
        p in 1usize..7,
        values in vec(any::<i64>(), 7),
    ) {
        let vals = values.clone();
        let report = world(p).run(move |comm| {
            comm.allreduce(vals[comm.rank() % vals.len()], i64::wrapping_add)
        });
        let expect = (0..p).map(|r| values[r % values.len()]).fold(0i64, i64::wrapping_add);
        for r in report.results {
            prop_assert_eq!(r, expect);
        }
    }

    #[test]
    fn scan_and_exscan_consistent(
        p in 1usize..7,
        seed in any::<u32>(),
    ) {
        let report = world(p).run(move |comm| {
            let v = (seed as u64).wrapping_mul(comm.rank() as u64 + 1) % 1000;
            let inc = comm.scan(v, |a, b| a + b);
            let exc = comm.exscan(v, |a, b| a + b);
            (v, inc, exc)
        });
        let mut acc = 0u64;
        for (rank, (v, inc, exc)) in report.results.into_iter().enumerate() {
            if rank == 0 {
                prop_assert_eq!(exc, None);
            } else {
                prop_assert_eq!(exc, Some(acc));
            }
            acc += v;
            prop_assert_eq!(inc, acc);
        }
    }

    #[test]
    fn split_partitions_world(
        p in 2usize..8,
        colors in vec(0i64..3, 8),
    ) {
        let colors2 = colors.clone();
        let report = world(p).run(move |comm| {
            let color = colors2[comm.rank() % colors2.len()];
            let sub = comm.split(Some(color), comm.rank() as i64).expect("colored");
            (color, sub.rank(), sub.size(), sub.allreduce(1usize, |a, b| a + b))
        });
        // group sizes must match color multiplicity; new ranks contiguous
        for (rank, (color, sub_rank, sub_size, counted)) in
            report.results.iter().enumerate()
        {
            let same: Vec<usize> = (0..p)
                .filter(|&r| colors[r % colors.len()] == *color)
                .collect();
            prop_assert_eq!(*sub_size, same.len());
            prop_assert_eq!(*counted, same.len());
            let my_pos = same.iter().position(|&r| r == rank).expect("member");
            prop_assert_eq!(*sub_rank, my_pos);
        }
    }

    #[test]
    fn async_exchange_survives_interleaved_collectives(
        p in 2usize..6,
        seed in any::<u64>(),
        rounds in 1usize..4,
        tag_sel in any::<u64>(),
    ) {
        // The async exchange reserves its collective tag while user p2p
        // traffic (arbitrary legal tags) and other collectives run through
        // the same mailboxes. No chunk may be stolen or duplicated.
        let user_tag = tag_sel % mpisim::Comm::MAX_USER_TAG;
        let report = world(p).run(move |comm| {
            let me = comm.rank();
            let count = |src: usize, dst: usize| -> usize {
                ((seed >> ((src * p + dst) % 48)) % 5) as usize
            };
            let counts: Vec<usize> = (0..p).map(|dst| count(me, dst)).collect();
            let mut data = Vec::new();
            for (dst, &c) in counts.iter().enumerate() {
                data.extend(std::iter::repeat_n((me * 100 + dst) as u64, c));
            }
            let mut h = comm.alltoallv_async(&data, &counts);
            // interleave collectives and user-tagged p2p while in flight
            for r in 0..rounds {
                comm.barrier();
                let s = comm.allreduce(1u64, |a, b| a + b);
                assert_eq!(s as usize, p);
                let right = (me + 1) % p;
                let left = (me + p - 1) % p;
                comm.send_vec(right, user_tag, vec![(me * 7 + r) as u64]);
                let got = comm.recv_vec::<u64>(left, user_tag);
                assert_eq!(got, vec![(left * 7 + r) as u64]);
            }
            // drain: every expected chunk arrives intact, exactly once
            let mut seen = vec![false; p];
            while let Some((src, chunk)) = h.wait_any(comm) {
                assert!(!seen[src], "duplicate chunk from {src}");
                seen[src] = true;
                assert_eq!(chunk, vec![(src * 100 + me) as u64; count(src, me)]);
            }
            let expect: Vec<bool> = (0..p).map(|src| count(src, me) > 0).collect();
            seen == expect
        });
        prop_assert!(report.results.iter().all(|&ok| ok));
    }
}
