//! Integration tests: collectives agree with sequential reference results
//! for a range of world sizes, including non-power-of-two sizes.

use mpisim::{NetModel, World};

fn world(p: usize) -> World {
    World::new(p).cores_per_node(4).net(NetModel::zero())
}

#[test]
fn barrier_completes_at_many_sizes() {
    for p in [1, 2, 3, 4, 7, 8, 16] {
        world(p).run(|comm| {
            for _ in 0..3 {
                comm.barrier();
            }
        });
    }
}

#[test]
fn bcast_from_every_root() {
    for p in [1, 2, 3, 5, 8] {
        for root in 0..p {
            let report = world(p).run(move |comm| {
                let data = if comm.rank() == root {
                    Some(vec![root as u64, 42, 7])
                } else {
                    None
                };
                comm.bcast(root, data)
            });
            for r in report.results {
                assert_eq!(r, vec![root as u64, 42, 7]);
            }
        }
    }
}

#[test]
fn gatherv_collects_in_rank_order() {
    let p = 6;
    let report = world(p).run(|comm| {
        // rank r contributes r copies of r
        let data = vec![comm.rank() as u32; comm.rank()];
        comm.gatherv(2, &data)
    });
    for (rank, res) in report.results.into_iter().enumerate() {
        if rank == 2 {
            let parts = res.expect("root gets parts");
            assert_eq!(parts.len(), p);
            for (src, part) in parts.iter().enumerate() {
                assert_eq!(part, &vec![src as u32; src]);
            }
        } else {
            assert!(res.is_none());
        }
    }
}

#[test]
fn allgather_concatenates() {
    let report = world(5).run(|comm| comm.allgather(&[comm.rank() as i64 * 10]));
    for r in report.results {
        assert_eq!(r, vec![0, 10, 20, 30, 40]);
    }
}

#[test]
fn allgatherv_variable_lengths() {
    let report = world(4).run(|comm| {
        let data: Vec<u16> = (0..comm.rank() as u16 + 1).collect();
        comm.allgatherv(&data)
    });
    for (flat, counts) in report.results {
        assert_eq!(counts, vec![1, 2, 3, 4]);
        assert_eq!(flat, vec![0, 0, 1, 0, 1, 2, 0, 1, 2, 3]);
    }
}

#[test]
fn alltoall_transposes() {
    let p = 4;
    let report = world(p).run(move |comm| {
        let data: Vec<u32> = (0..p).map(|dst| (comm.rank() * 100 + dst) as u32).collect();
        comm.alltoall(&data)
    });
    for (rank, recv) in report.results.into_iter().enumerate() {
        let expect: Vec<u32> = (0..p).map(|src| (src * 100 + rank) as u32).collect();
        assert_eq!(recv, expect);
    }
}

#[test]
fn alltoallv_roundtrips_triangular_matrix() {
    let p = 5;
    let report = world(p).run(move |comm| {
        let me = comm.rank();
        // rank r sends (r + dst) copies of marker r*p+dst to dst
        let counts: Vec<usize> = (0..p).map(|dst| me + dst).collect();
        let mut data = Vec::new();
        for dst in 0..p {
            data.extend(std::iter::repeat_n((me * p + dst) as u64, me + dst));
        }
        comm.alltoallv(&data, &counts)
    });
    for (rank, (recv, rcounts)) in report.results.into_iter().enumerate() {
        let expect_counts: Vec<usize> = (0..p).map(|src| src + rank).collect();
        assert_eq!(rcounts, expect_counts);
        let mut expect = Vec::new();
        for src in 0..p {
            expect.extend(std::iter::repeat_n((src * p + rank) as u64, src + rank));
        }
        assert_eq!(recv, expect);
    }
}

#[test]
fn alltoallv_with_zero_counts() {
    let p = 4;
    let report = world(p).run(move |comm| {
        // only rank 0 sends anything, and only to rank p-1
        let mut counts = vec![0usize; p];
        let data: Vec<u8> = if comm.rank() == 0 {
            counts[p - 1] = 3;
            vec![9, 9, 9]
        } else {
            Vec::new()
        };
        comm.alltoallv(&data, &counts)
    });
    for (rank, (recv, _)) in report.results.into_iter().enumerate() {
        if rank == p - 1 {
            assert_eq!(recv, vec![9, 9, 9]);
        } else {
            assert!(recv.is_empty());
        }
    }
}

#[test]
fn reduce_and_allreduce_fold_in_rank_order() {
    let report = world(6).run(|comm| {
        let cat = comm.allreduce(vec![comm.rank() as u8], |mut a, b| {
            a.extend(b);
            a
        });
        let sum = comm.reduce(3, comm.rank() as u64, |a, b| a + b);
        (cat, sum)
    });
    for (rank, (cat, sum)) in report.results.into_iter().enumerate() {
        assert_eq!(
            cat,
            vec![0, 1, 2, 3, 4, 5],
            "non-commutative op must fold in rank order"
        );
        if rank == 3 {
            assert_eq!(sum, Some(15));
        } else {
            assert_eq!(sum, None);
        }
    }
}

#[test]
fn exscan_prefix_sums() {
    let report = world(5).run(|comm| comm.exscan(comm.rank() as u64 + 1, |a, b| a + b));
    let got: Vec<Option<u64>> = report.results;
    assert_eq!(got, vec![None, Some(1), Some(3), Some(6), Some(10)]);
}

#[test]
fn single_rank_world_collectives() {
    let report = world(1).run(|comm| {
        comm.barrier();
        let b = comm.bcast(0, Some(vec![5u8]));
        let (a2a, counts) = comm.alltoallv(&[1u32, 2, 3], &[3]);
        let ar = comm.allreduce(7i64, |a, b| a + b);
        (b, a2a, counts, ar)
    });
    let (b, a2a, counts, ar) = report.results.into_iter().next().unwrap();
    assert_eq!(b, vec![5]);
    assert_eq!(a2a, vec![1, 2, 3]);
    assert_eq!(counts, vec![3]);
    assert_eq!(ar, 7);
}

#[test]
fn interleaved_collectives_do_not_cross_match() {
    // Two back-to-back alltoallvs with different payloads must not mix.
    let p = 4;
    let report = world(p).run(move |comm| {
        let me = comm.rank() as u64;
        let counts = vec![1usize; p];
        let first: Vec<u64> = vec![me; p];
        let second: Vec<u64> = vec![me + 100; p];
        let (r1, _) = comm.alltoallv(&first, &counts);
        let (r2, _) = comm.alltoallv(&second, &counts);
        (r1, r2)
    });
    for (r1, r2) in report.results {
        assert_eq!(r1, vec![0, 1, 2, 3]);
        assert_eq!(r2, vec![100, 101, 102, 103]);
    }
}

#[test]
fn scan_inclusive_prefix() {
    let report = world(5).run(|comm| comm.scan(comm.rank() as u64 + 1, |a, b| a + b));
    assert_eq!(report.results, vec![1, 3, 6, 10, 15]);
}

#[test]
fn scatter_equal_chunks() {
    let p = 4;
    let report = world(p).run(move |comm| {
        let data: Option<Vec<u32>> = (comm.rank() == 1).then(|| (0..(p as u32) * 3).collect());
        comm.scatter(1, data.as_deref())
    });
    for (rank, chunk) in report.results.into_iter().enumerate() {
        let base = rank as u32 * 3;
        assert_eq!(chunk, vec![base, base + 1, base + 2]);
    }
}

#[test]
fn scatterv_variable_chunks() {
    let p = 4;
    let report = world(p).run(move |comm| {
        let chunks: Option<Vec<Vec<u8>>> =
            (comm.rank() == 0).then(|| (0..p).map(|i| vec![i as u8; i]).collect());
        comm.scatterv(0, chunks)
    });
    for (rank, chunk) in report.results.into_iter().enumerate() {
        assert_eq!(chunk, vec![rank as u8; rank]);
    }
}

#[test]
fn reduce_scatter_sums_columns() {
    let p = 4;
    let report = world(p).run(move |comm| {
        // rank r contributes row r of the matrix M[r][j] = r*10 + j;
        // rank j must end with the column sum Σ_r (r*10 + j).
        let row: Vec<u64> = (0..p).map(|j| (comm.rank() * 10 + j) as u64).collect();
        comm.reduce_scatter(&row, |a, b| a + b)
    });
    for (rank, sum) in report.results.into_iter().enumerate() {
        let expect: u64 = (0..p).map(|r| (r * 10 + rank) as u64).sum();
        assert_eq!(sum, expect);
    }
}
