//! End-to-end tests of the happens-before determinism/race checker: racy
//! programs raise [`RaceError`] from `World::run`, causally sound programs
//! (including every pattern the tier-1 suite relies on) run clean with
//! checking enabled.

use mpisim::{NetModel, RaceError, World};
use std::panic::{catch_unwind, AssertUnwindSafe};

const DATA_TAG: u64 = 5;
const GO_TAG: u64 = 6;
const READY_TAG: u64 = 7;

/// Run a world and return the checker's report, panicking if the closure
/// failed for any other reason.
fn race_report<R, F>(world: World, f: F) -> Option<String>
where
    R: Send,
    F: Fn(&mut mpisim::Comm) -> R + Send + Sync,
{
    match catch_unwind(AssertUnwindSafe(|| world.run(f))) {
        Ok(_) => None,
        Err(payload) => match payload.downcast::<RaceError>() {
            Ok(e) => Some(e.report),
            Err(other) => std::panic::resume_unwind(other),
        },
    }
}

#[test]
fn racy_wildcard_receive_is_flagged() {
    // Ranks 1 and 2 race their sends to rank 0's any-source receives:
    // whichever thread runs first gets matched first, so the (src, value)
    // attribution differs run to run. The checker must flag it no matter
    // which interleaving the scheduler picks.
    let world = World::new(3).net(NetModel::zero()).check(true);
    let report = race_report(world, |comm| {
        if comm.rank() == 0 {
            let mut got = Vec::new();
            for _ in 0..2 {
                let (src, v) = comm.recv_any::<u64>(DATA_TAG);
                got.push((src, v));
            }
            got
        } else {
            comm.send_val(0, DATA_TAG, comm.rank() as u64 * 100);
            Vec::new()
        }
    });
    let report = report.expect("racy wildcard receive must raise RaceError");
    assert!(
        report.contains("wildcard-receive nondeterminism"),
        "unexpected report:\n{report}"
    );
    assert!(
        report.contains("user tag 5"),
        "tag must be decoded:\n{report}"
    );
}

#[test]
fn causally_chained_wildcard_is_clean() {
    // Same two senders and the same any-source receives, but rank 2 only
    // sends after rank 0 tells it the first receive completed — every
    // wildcard match has exactly one possible source, so no race exists.
    let world = World::new(3).net(NetModel::zero()).check(true);
    let report = race_report(world, |comm| match comm.rank() {
        0 => {
            let (src, _) = comm.recv_any::<u64>(DATA_TAG);
            assert_eq!(src, 1, "only rank 1 has sent at this point");
            comm.send_val(2, GO_TAG, 1u8);
            let (src, _) = comm.recv_any::<u64>(DATA_TAG);
            assert_eq!(src, 2);
        }
        1 => comm.send_val(0, DATA_TAG, 100u64),
        _ => {
            let _: u8 = comm.recv_val(0, GO_TAG);
            comm.send_val(0, DATA_TAG, 200u64);
        }
    });
    assert_eq!(report, None, "causally ordered wildcards are deterministic");
}

#[test]
fn tag_reuse_in_flight_is_flagged() {
    // Rank 1 puts TWO messages on the same tag in flight, then signals
    // readiness on a different tag; rank 0 waits for the signal before doing
    // any-source receives, so both data envelopes are deterministically in
    // flight when the wildcard matches — tag reuse the receiver cannot
    // attribute.
    let world = World::new(2).net(NetModel::zero()).check(true);
    let report = race_report(world, |comm| {
        if comm.rank() == 0 {
            let _: u8 = comm.recv_val(1, READY_TAG);
            let (_, a) = comm.recv_any::<u64>(DATA_TAG);
            let (_, b) = comm.recv_any::<u64>(DATA_TAG);
            (a[0], b[0])
        } else {
            comm.send_val(0, DATA_TAG, 1u64);
            comm.send_val(0, DATA_TAG, 2u64);
            comm.send_val(0, READY_TAG, 1u8);
            (0, 0)
        }
    });
    let report = report.expect("tag reuse under wildcard matching must raise RaceError");
    assert!(
        report.contains("tag reuse in flight"),
        "unexpected report:\n{report}"
    );
}

#[test]
fn unsynchronized_shared_state_is_flagged() {
    let world = World::new(2).net(NetModel::zero()).check(true);
    let report = race_report(world, |comm| {
        comm.trace_phase("splitter-install");
        comm.check_shared_write("global-splitters");
    });
    let report = report.expect("unsynchronized shared writes must raise RaceError");
    assert!(report.contains("shared-state race"), "{report}");
    assert!(
        report.contains("splitter-install"),
        "phase must be named:\n{report}"
    );
}

#[test]
fn barrier_ordered_shared_state_is_clean() {
    // The collective edge (barrier is built on sends/receives, which the
    // checker tracks) orders rank 0's write before rank 1's.
    let world = World::new(4).net(NetModel::zero()).check(true);
    let report = race_report(world, |comm| {
        if comm.rank() == 0 {
            comm.check_shared_write("global-splitters");
        }
        comm.barrier();
        if comm.rank() == 1 {
            comm.check_shared_read("global-splitters");
        }
    });
    assert_eq!(report, None, "barrier creates the happens-before edge");
}

#[test]
fn tier1_collective_patterns_run_clean_under_check() {
    // The communication patterns the sorting pipeline relies on —
    // collectives, splits, node-local communicators, the async alltoallv —
    // must all be race-free under the checker.
    let world = World::new(8)
        .cores_per_node(4)
        .net(NetModel::zero())
        .check(true);
    let report = race_report(world, |comm| {
        let rank = comm.rank() as u64;
        let sum = comm.allreduce(rank, |a, b| a + b);
        let _ = comm.exscan(1u64, |a, b| a + b);
        let gathered = comm.allgather(&[rank]);
        assert_eq!(gathered.len(), comm.size());
        let (_, node_comm) = comm.refine_comm();
        let _ = node_comm.allreduce(rank, |a, b| a + b);

        // Async alltoallv: every rank sends a chunk to every rank on one
        // tag. Order-insensitive by protocol, so it must NOT be flagged.
        let data: Vec<u64> = (0..comm.size() as u64 * 2).collect();
        let send_counts = vec![2usize; comm.size()];
        let mut pending = comm.alltoallv_async(&data, &send_counts);
        let mut seen = 0;
        while let Some((_, _chunk)) = pending.wait_any(comm) {
            seen += 1;
        }
        assert_eq!(seen, comm.size());
        comm.barrier();
        sum
    });
    assert_eq!(report, None, "tier-1 patterns must be clean under checking");
}

#[test]
fn checker_off_by_default_ignores_races() {
    // Without .check(true) (and without the `check` feature) the same racy
    // program completes: the checker is opt-in and zero-cost when off.
    if cfg!(feature = "check") {
        return; // feature flips the default on; the racy run would (rightly) panic
    }
    let report = World::new(3).net(NetModel::zero()).run(|comm| {
        if comm.rank() == 0 {
            let mut got = 0;
            for _ in 0..2 {
                got += comm.recv_any::<u64>(DATA_TAG).1[0];
            }
            got
        } else {
            comm.send_val(0, DATA_TAG, comm.rank() as u64);
            0
        }
    });
    assert_eq!(report.results[0], 3);
}
