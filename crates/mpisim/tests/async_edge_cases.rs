//! Edge-case regressions for the asynchronous all-to-all: empty self
//! chunks, single-rank worlds, all-empty counts, sparse patterns, handles
//! interleaved with collectives, and `p2p::wait_any` request identity.
use mpisim::{NetModel, World};

#[test]
fn single_rank_nonempty() {
    let report = World::new(1).net(NetModel::edison()).run(|comm| {
        let data = vec![3u64, 1, 2];
        let mut h = comm.alltoallv_async(&data, &[3]);
        assert_eq!(h.remaining(), 1);
        assert_eq!(h.total_recv(), 3);
        let got = h.wait_any(comm);
        assert_eq!(got, Some((0, vec![3u64, 1, 2])));
        assert_eq!(h.remaining(), 0);
        assert!(h.wait_any(comm).is_none());
        0u8
    });
    drop(report);
}

#[test]
fn single_rank_empty() {
    World::new(1).net(NetModel::edison()).run(|comm| {
        let data: Vec<u64> = Vec::new();
        let mut h = comm.alltoallv_async(&data, &[0]);
        assert_eq!(h.remaining(), 0);
        assert!(h.wait_any(comm).is_none());
        0u8
    });
}

#[test]
fn all_empty_counts() {
    World::new(4).net(NetModel::edison()).run(|comm| {
        let p = comm.size();
        let data: Vec<u64> = Vec::new();
        let mut h = comm.alltoallv_async(&data, &vec![0; p]);
        assert_eq!(h.remaining(), 0, "nothing pending when all counts zero");
        assert!(h.wait_any(comm).is_none());
        // comm must remain usable afterwards
        comm.barrier();
        comm.allreduce(1u64, |a, b| a + b)
    });
}

#[test]
fn empty_self_remotes_pending() {
    let report = World::new(4).net(NetModel::edison()).run(|comm| {
        let p = comm.size();
        let me = comm.rank();
        // everyone sends 2 records to every OTHER rank, nothing to self
        let mut counts = vec![2usize; p];
        counts[me] = 0;
        let data: Vec<u64> = (0..p)
            .filter(|&d| d != me)
            .flat_map(|d| vec![(me * 10 + d) as u64; 2])
            .collect();
        let mut h = comm.alltoallv_async(&data, &counts);
        assert_eq!(h.remaining(), p - 1);
        let mut got = Vec::new();
        while let Some((src, chunk)) = h.wait_any(comm) {
            assert_ne!(src, me, "self chunk is empty; must not be delivered");
            assert_eq!(chunk, vec![(src * 10 + me) as u64; 2]);
            got.push(src);
        }
        assert_eq!(h.remaining(), 0);
        got.sort_unstable();
        let expect: Vec<usize> = (0..p).filter(|&s| s != me).collect();
        assert_eq!(got, expect);
        0u8
    });
    drop(report);
}

#[test]
fn empty_remote_mixed() {
    // Sparse pattern: rank r sends only to (r+1)%p and itself.
    World::new(4).net(NetModel::edison()).run(|comm| {
        let p = comm.size();
        let me = comm.rank();
        let nxt = (me + 1) % p;
        let mut counts = vec![0usize; p];
        counts[me] = 1;
        counts[nxt] = 3;
        let mut data = Vec::new();
        for (dst, &c) in counts.iter().enumerate() {
            data.extend(std::iter::repeat_n((me * 100 + dst) as u64, c));
        }
        let mut h = comm.alltoallv_async(&data, &counts);
        // expect: self chunk (1) + one remote from (me+p-1)%p (3)
        assert_eq!(h.remaining(), 2);
        let mut from = Vec::new();
        while let Some((src, chunk)) = h.wait_any(comm) {
            if src == me {
                assert_eq!(chunk, vec![(me * 100 + me) as u64]);
            } else {
                assert_eq!(src, (me + p - 1) % p);
                assert_eq!(chunk, vec![(src * 100 + me) as u64; 3]);
            }
            from.push(src);
        }
        assert_eq!(from.len(), 2);
        0u8
    });
}

#[test]
fn async_interleaved_with_collectives() {
    // Post async exchange, run barriers/allreduces/bcasts with the handle
    // in flight (different payload types!), then drain.
    let report = World::new(6).net(NetModel::slow_ethernet()).run(|comm| {
        let p = comm.size();
        let me = comm.rank();
        let counts = vec![4usize; p];
        let data: Vec<u64> = (0..p)
            .flat_map(|d| vec![(me * 1000 + d) as u64; 4])
            .collect();
        let mut h = comm.alltoallv_async(&data, &counts);
        // interleave: barrier (u8 payloads), allreduce (u64 single), bcast
        comm.barrier();
        let s = comm.allreduce(me as u64, |a, b| a + b);
        assert_eq!(s as usize, p * (p - 1) / 2);
        let b = comm.bcast(0, (me == 0).then(|| vec![7u64, 8, 9]));
        assert_eq!(b, vec![7, 8, 9]);
        comm.barrier();
        // now drain
        let mut seen = vec![false; p];
        while let Some((src, chunk)) = h.wait_any(comm) {
            assert!(!seen[src], "duplicate delivery from {src}");
            seen[src] = true;
            assert_eq!(chunk, vec![(src * 1000 + me) as u64; 4]);
        }
        assert!(seen.iter().all(|&x| x));
        0u8
    });
    drop(report);
}

#[test]
fn two_handles_in_flight() {
    // Two async exchanges posted back-to-back, drained second-first.
    World::new(4).net(NetModel::edison()).run(|comm| {
        let p = comm.size();
        let me = comm.rank();
        let counts = vec![1usize; p];
        let a: Vec<u64> = (0..p).map(|d| (me * 10 + d) as u64).collect();
        let b: Vec<u64> = (0..p).map(|d| 5000 + (me * 10 + d) as u64).collect();
        let mut ha = comm.alltoallv_async(&a, &counts);
        let mut hb = comm.alltoallv_async(&b, &counts);
        // Drain B first — its messages sit behind A's in the mailbox.
        let mut got_b = Vec::new();
        while let Some((src, chunk)) = hb.wait_any(comm) {
            assert_eq!(chunk, vec![5000 + (src * 10 + me) as u64]);
            got_b.push(src);
        }
        assert_eq!(got_b.len(), p);
        let mut got_a = Vec::new();
        while let Some((src, chunk)) = ha.wait_any(comm) {
            assert_eq!(chunk, vec![(src * 10 + me) as u64]);
            got_a.push(src);
        }
        assert_eq!(got_a.len(), p);
        0u8
    });
}

#[test]
fn p2p_wait_any_identity() {
    // wait_any's returned index must identify the completed request in a
    // way the caller can use. Use per-source tags and check payloads match
    // the request the index claims completed.
    let p = 4;
    let report = World::new(p).net(NetModel::zero()).run(move |comm| {
        if comm.rank() == 0 {
            let mut reqs: Vec<_> = (1..p)
                .map(|src| comm.irecv::<u64>(src, 40 + src as u64))
                .collect();
            // Track identity by source: slot i initially holds source i+1.
            let mut sources: Vec<usize> = (1..p).collect();
            let mut got = Vec::new();
            while !reqs.is_empty() {
                let (idx, data) = mpisim::p2p::wait_any(comm, &mut reqs).expect("nonempty");
                let src = sources[idx];
                // mirror swap_remove bookkeeping
                sources.swap_remove(idx);
                assert_eq!(data, vec![src as u64 * 100], "index/payload mismatch");
                got.push(src);
            }
            got.sort_unstable();
            got
        } else {
            let me = comm.rank();
            comm.isend(0, 40 + me as u64, vec![me as u64 * 100]);
            Vec::new()
        }
    });
    assert_eq!(report.results[0], vec![1, 2, 3]);
}
