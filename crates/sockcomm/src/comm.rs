//! The sockets-backend communicator: [`SockComm`] implements
//! [`comm::Communicator`] over per-peer socket links and the shared
//! bounded-mailbox matching discipline.
//!
//! The collective algorithms are the shared bodies in [`comm::raw`] — the
//! same dissemination barrier, binomial broadcast, rank-order gatherv,
//! staggered `alltoallv` and async self-first protocol as the simulator
//! and the threads backend — so collective *results* (including
//! deterministic rank-order reduction folds) are bit-identical across all
//! three backends. `SockComm` supplies only the raw substrate: frame
//! encoding/decoding at the send/recv boundary, mailbox matching, and the
//! identical `MAX_USER_TAG + (op_seq << 12)` collective tag reservation.

use crate::frame::{Frame, FrameKind};
use crate::universe::SockUniverse;
use ::comm::mailbox::{Envelope, SrcSel};
use ::comm::raw::{self, RawAsync, RawComm};
use ::comm::{Communicator, OomError, Wire, MAX_USER_TAG};
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::Arc;

/// Panic payload used when a rank unwinds because the world aborted
/// (typically: a peer process died). The child runtime catches it and
/// turns the recorded [`crate::DeadPeer`] into the diagnostic.
#[derive(Debug)]
pub struct SockAborted {
    /// Communicator rank that was interrupted.
    pub rank: usize,
}

/// Handle to an in-flight asynchronous `alltoallv` on the sockets backend:
/// the shared raw-substrate handle from [`comm::raw`].
pub type SockAsync<T> = RawAsync<T>;

/// Derive a child communicator context id from the parent's: a splitmix64
/// hash chain over `(parent_ctx, split_seq, color)`. Every member of a
/// split computes this locally from values all members agree on, so no
/// shared registry (which a process-per-rank world cannot have) is needed;
/// the high bit is forced so a derived context never collides with the
/// world context 0.
pub(crate) fn split_ctx(parent: u64, split_seq: u64, color: i64) -> u64 {
    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    mix(mix(mix(parent) ^ split_seq) ^ color as u64) | (1 << 63)
}

/// A rank-local handle to a sockets-backend communicator. `!Send` by
/// construction (collective sequence counters are `Cell`s): a rank's
/// communicator lives on that rank process's main thread.
pub struct SockComm {
    uni: Arc<SockUniverse>,
    /// Context id distinguishing this communicator's traffic.
    ctx: u64,
    /// World ranks of the members, ordered by communicator rank.
    members: Arc<[usize]>,
    /// Map from world rank to communicator rank for members.
    world_to_comm: Arc<HashMap<usize, usize>>,
    /// This rank's position within `members`.
    my_index: usize,
    /// Number of splits performed (for deterministic child context ids).
    split_seq: Cell<u64>,
    /// Number of collective operations performed (for tag isolation).
    coll_seq: Cell<u64>,
}

impl SockComm {
    pub(crate) fn new(
        uni: Arc<SockUniverse>,
        ctx: u64,
        members: Arc<[usize]>,
        my_index: usize,
    ) -> Self {
        let world_to_comm = Arc::new(
            members
                .iter()
                .enumerate()
                .map(|(i, &w)| (w, i))
                .collect::<HashMap<_, _>>(),
        );
        Self {
            uni,
            ctx,
            members,
            world_to_comm,
            my_index,
            split_seq: Cell::new(0),
            coll_seq: Cell::new(0),
        }
    }

    fn check_alive(&self) {
        if self.uni.is_aborted() {
            self.abort_unwind();
        }
    }

    #[track_caller]
    fn assert_user_tag(tag: u64) {
        assert!(
            tag < MAX_USER_TAG,
            "tag {tag} is outside the user tag space: tags at or above \
             MAX_USER_TAG (2^48) are reserved for collective operations"
        );
    }

    fn abort_unwind(&self) -> ! {
        // resume_unwind, not panic_any: this is deliberate control flow to
        // the catch_unwind in the rank runtime (which reports the dead
        // peer), so the panic hook's backtrace would be pure noise.
        std::panic::resume_unwind(Box::new(SockAborted {
            rank: self.my_index,
        }))
    }

    fn open_envelope<T: Wire>(&self, env: Envelope) -> (usize, Vec<T>) {
        let src_comm = self
            .world_to_comm
            .get(&env.src)
            .copied()
            .expect("sender is a member of this communicator");
        let bytes = env
            .data
            .downcast::<Vec<u8>>()
            .unwrap_or_else(|_| panic!("non-byte payload in sockets mailbox (tag {})", env.tag));
        let data = T::get_vec(&bytes).unwrap_or_else(|| {
            panic!(
                "undecodable payload from world rank {} (ctx {}, tag {}, {} bytes): \
                 sender and receiver disagree on the element type",
                env.src,
                env.ctx,
                env.tag,
                bytes.len()
            )
        });
        (src_comm, data)
    }

    fn recv_sel_raw<T: Wire>(&self, src: SrcSel, tag: u64) -> (usize, Vec<T>) {
        self.check_alive();
        match self.uni.mailbox.take(self.ctx, src, tag, &self.uni.aborted) {
            Some(env) => self.open_envelope(env),
            None => self.abort_unwind(),
        }
    }

    fn next_split_seq(&self) -> u64 {
        let s = self.split_seq.get();
        self.split_seq.set(s + 1);
        s
    }
}

impl std::fmt::Debug for SockComm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SockComm")
            .field("ctx", &self.ctx)
            .field("rank", &self.my_index)
            .field("size", &self.members.len())
            .field("world_rank", &self.members[self.my_index])
            .finish()
    }
}

impl RawComm for SockComm {
    fn send_raw<T: Wire>(&self, dst: usize, tag: u64, data: Vec<T>) {
        self.check_alive();
        let src_w = self.members[self.my_index];
        let dst_w = self.members[dst];
        let mut payload = Vec::new();
        T::put_slice(&data, &mut payload);
        let bytes = payload.len();
        self.uni.stats.record(bytes);
        self.uni.recorder.on_send(src_w, dst_w, bytes);
        if dst_w == src_w {
            // Self-send: straight into the local mailbox, no socket.
            let delivered = self.uni.mailbox.push(
                Envelope {
                    ctx: self.ctx,
                    src: src_w,
                    tag,
                    data: Box::new(payload),
                    bytes,
                },
                &self.uni.aborted,
            );
            if !delivered {
                self.abort_unwind();
            }
            return;
        }
        let frame = Frame {
            kind: FrameKind::Data,
            ctx: self.ctx,
            src: src_w as u32,
            tag,
            payload,
        };
        if let Err(e) = self.uni.send_frame(dst_w, &frame) {
            // A write error means the peer's socket is gone: record the
            // death (EPIPE/ECONNRESET arrive here because Rust ignores
            // SIGPIPE) and unwind.
            self.uni
                .peer_died(dst_w, format!("send to rank {dst_w} failed: {e}"));
            self.abort_unwind();
        }
    }

    fn recv_vec_raw<T: Wire>(&self, src: usize, tag: u64) -> Vec<T> {
        self.recv_sel_raw(SrcSel::Exact(self.members[src]), tag).1
    }

    fn recv_any_raw<T: Wire>(&self, tag: u64) -> (usize, Vec<T>) {
        self.recv_sel_raw(SrcSel::Any, tag)
    }

    fn try_recv_any_raw<T: Wire>(&self, tag: u64) -> Option<(usize, Vec<T>)> {
        self.check_alive();
        self.uni
            .mailbox
            .try_take(self.ctx, SrcSel::Any, tag)
            .map(|env| self.open_envelope(env))
    }

    fn next_coll_tag(&self) -> u64 {
        let seq = self.coll_seq.get();
        self.coll_seq.set(seq + 1);
        debug_assert!(
            seq < (1 << 15),
            "collective sequence number overflow risk (seq {seq})"
        );
        // Same reservation as the simulator and the threads backend.
        MAX_USER_TAG + (seq << 12)
    }
}

impl Communicator for SockComm {
    type Async<T: Wire> = SockAsync<T>;

    fn size(&self) -> usize {
        self.members.len()
    }

    fn rank(&self) -> usize {
        self.my_index
    }

    fn world_rank(&self) -> usize {
        self.members[self.my_index]
    }

    fn world_rank_of(&self, r: usize) -> usize {
        self.members[r]
    }

    fn cores_per_node(&self) -> usize {
        self.uni.cores_per_node
    }

    fn node(&self) -> usize {
        self.world_rank() / self.uni.cores_per_node
    }

    fn now(&self) -> f64 {
        self.uni.start.elapsed().as_secs_f64()
    }

    fn compute<R>(&self, f: impl FnOnce() -> R) -> R {
        let t0 = self.now();
        let r = f();
        self.uni
            .recorder
            .add_compute(self.world_rank(), self.now() - t0);
        r
    }

    fn charge_compute(&self, seconds: f64) {
        // Wall-clock backend: record the modeled charge, don't stall.
        self.uni.recorder.add_compute(self.world_rank(), seconds);
    }

    fn trace_phase(&self, name: &str) {
        self.uni.recorder.set_phase(name);
    }

    fn recorder(&self) -> &telemetry::Recorder {
        &self.uni.recorder
    }

    fn try_alloc(&self, _bytes: usize) -> Result<(), OomError> {
        // No simulated budget: each rank process is bounded by host RAM.
        Ok(())
    }

    fn free(&self, _bytes: usize) {}

    fn memory_pressure_with(&self, _extra: usize) -> f64 {
        0.0
    }

    fn send_vec<T: Wire>(&self, dst: usize, tag: u64, data: Vec<T>) {
        Self::assert_user_tag(tag);
        self.send_raw(dst, tag, data);
    }

    fn recv_vec<T: Wire>(&self, src: usize, tag: u64) -> Vec<T> {
        Self::assert_user_tag(tag);
        self.recv_vec_raw(src, tag)
    }

    fn barrier(&self) {
        raw::barrier(self);
    }

    fn bcast<T: Wire>(&self, root: usize, data: Option<Vec<T>>) -> Vec<T> {
        raw::bcast(self, root, data)
    }

    fn gatherv<T: Wire>(&self, root: usize, data: &[T]) -> Option<Vec<Vec<T>>> {
        raw::gatherv(self, root, data)
    }

    fn alltoall<T: Wire>(&self, data: &[T]) -> Vec<T> {
        raw::alltoall(self, data)
    }

    fn alltoallv_given_counts<T: Wire>(
        &self,
        data: &[T],
        send_counts: &[usize],
        recv_counts: &[usize],
    ) -> Vec<T> {
        raw::alltoallv_given_counts(self, data, send_counts, recv_counts)
    }

    fn alltoallv_async_given_counts<T: Wire>(
        &self,
        data: &[T],
        send_counts: &[usize],
        recv_counts: Vec<usize>,
    ) -> SockAsync<T> {
        raw::alltoallv_async_given_counts(self, data, send_counts, recv_counts)
    }

    fn scatterv<T: Wire>(&self, root: usize, chunks: Option<Vec<Vec<T>>>) -> Vec<T> {
        raw::scatterv(self, root, chunks)
    }

    fn split(&self, color: Option<i64>, key: i64) -> Option<SockComm> {
        // Shared group computation (identical wire pattern to the other
        // backends); the context id is derived by hashing, not a registry —
        // see `split_ctx`.
        let group = raw::split_group(self, color, key);
        let split_seq = self.next_split_seq();
        let (old_ranks, my_index) = group?;
        let my_color = color.expect("group membership implies a color");

        let members: Arc<[usize]> = old_ranks
            .iter()
            .map(|&old| self.world_rank_of(old))
            .collect();
        let ctx = split_ctx(self.ctx, split_seq, my_color);
        Some(SockComm::new(Arc::clone(&self.uni), ctx, members, my_index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_ctx_is_deterministic_distinct_and_nonzero() {
        let a = split_ctx(0, 0, 0);
        assert_eq!(a, split_ctx(0, 0, 0), "pure function of its inputs");
        assert_ne!(a, 0);
        // Distinct along every axis a correct split varies.
        assert_ne!(split_ctx(0, 0, 0), split_ctx(0, 0, 1));
        assert_ne!(split_ctx(0, 0, 0), split_ctx(0, 1, 0));
        assert_ne!(split_ctx(0, 0, 0), split_ctx(a, 0, 0));
        // Negative colors are fine (split colors are i64).
        assert_ne!(split_ctx(0, 0, -1), split_ctx(0, 0, 1));
    }
}
