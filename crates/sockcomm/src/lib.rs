//! Distributed process-per-rank backend for the `comm::Communicator`
//! abstraction: each rank is an OS process, and ranks talk over TCP or
//! Unix-domain sockets instead of a shared-memory mailbox graph.
//!
//! This is the third execution substrate for the SDS-Sort pipeline:
//!
//! | backend    | rank is a…      | messages travel via                   |
//! |------------|-----------------|---------------------------------------|
//! | `mpisim`   | simulated actor | in-process event queue (virtual time) |
//! | `shmem`    | OS thread       | shared-memory bounded mailboxes       |
//! | `sockcomm` | OS **process**  | length-prefixed frames over sockets   |
//!
//! All three share the collective decompositions in `comm::raw`
//! (dissemination barrier, binomial bcast, staggered alltoallv, self-first
//! async exchange) and the `(ctx, src, tag)` matching discipline in
//! `comm::mailbox`, so the same seed produces bit-identical per-rank
//! output on every backend — `tests/backend_equivalence.rs` at the
//! workspace root proves it.
//!
//! ## Layer map
//!
//! - [`frame`]: length-prefixed wire format with the `(ctx, src, tag)`
//!   header; pure codec + stream IO.
//! - `net`: `Stream`/`Listener` over TCP-loopback or Unix-domain sockets.
//! - `universe`: per-process rank state — mailbox, peer links, abort flag,
//!   close-barrier bookkeeping, traffic counters.
//! - `comm`: [`SockComm`], the `Communicator` implementation (a thin
//!   `comm::raw::RawComm` shim; the algorithms live in `comm::raw`).
//! - `launch`: [`SocketWorld`] (rendezvous launcher) and [`child_rank`]
//!   (re-exec'd child entry); peer-death detection and teardown.
//!
//! ## Running a world
//!
//! ```no_run
//! use comm::Communicator;
//! use sockcomm::{child_rank, SocketWorld};
//!
//! // Child processes divert here; the parent falls through.
//! child_rank("sum", |comm, base: u64| -> u64 {
//!     comm.barrier();
//!     base + comm.rank() as u64
//! });
//! let report = SocketWorld::new(4)
//!     .run::<u64, u64>("sum", &100)
//!     .expect("world");
//! assert_eq!(report.results, vec![100, 101, 102, 103]);
//! ```
//!
//! Unlike the simulator there is no virtual clock here — `now()` is real
//! wall time (see EXPERIMENTS.md for why multi-process timings are
//! reported separately from simulated makespans).
#![warn(missing_docs)]

mod comm;
pub mod frame;
mod launch;
mod net;
mod universe;

pub use crate::comm::{SockAborted, SockAsync, SockComm};
pub use launch::{child_rank, SockError, SockReport, SocketWorld, ENV_RANK};
pub use net::Transport;
pub use universe::{DeadPeer, NetStats};
