//! Transport selection: TCP on loopback or Unix-domain sockets, behind one
//! `Stream`/`Listener` pair so the rest of the backend is transport-blind.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::time::{Duration, Instant};

/// Which socket family a world runs over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// Unix-domain sockets in the world's scratch directory (the default:
    /// lowest latency, no port allocation, self-cleaning with the dir).
    Uds,
    /// TCP on 127.0.0.1 with kernel-assigned ports (exercises the code
    /// path a multi-host deployment would use).
    Tcp,
}

impl Transport {
    /// Parse a CLI/env spelling.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "uds" | "unix" => Some(Self::Uds),
            "tcp" => Some(Self::Tcp),
            _ => None,
        }
    }

    /// The spelling [`Transport::parse`] accepts.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Uds => "uds",
            Self::Tcp => "tcp",
        }
    }
}

/// A connected byte stream of either family.
#[derive(Debug)]
pub enum Stream {
    /// TCP connection.
    Tcp(TcpStream),
    /// Unix-domain connection.
    Uds(UnixStream),
}

impl Stream {
    /// Clone the handle (shares the underlying socket).
    pub fn try_clone(&self) -> io::Result<Stream> {
        Ok(match self {
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
            Stream::Uds(s) => Stream::Uds(s.try_clone()?),
        })
    }

    /// Shut down both directions; any blocked reader on the socket (local
    /// or remote) sees EOF.
    pub fn shutdown(&self) {
        // Best-effort: the socket may already be gone.
        let _ = match self {
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            Stream::Uds(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }

    /// Bound (or unbound, with `None`) how long reads may block. Used only
    /// during rendezvous, where a silent peer should become an error.
    pub fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(d),
            Stream::Uds(s) => s.set_read_timeout(d),
        }
    }

    /// Disable Nagle batching on TCP (no-op for UDS): the collectives are
    /// latency-bound ping-pongs, not throughput streams.
    pub fn tune(&self) {
        if let Stream::Tcp(s) = self {
            let _ = s.set_nodelay(true);
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Uds(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Uds(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Uds(s) => s.flush(),
        }
    }
}

/// A listening socket of either family.
pub enum Listener {
    /// TCP listener on loopback.
    Tcp(TcpListener),
    /// Unix-domain listener.
    Uds(UnixListener),
}

impl Listener {
    /// Bind a listener: a kernel-assigned loopback port for TCP, or the
    /// given path for UDS.
    pub fn bind(transport: Transport, uds_path: &Path) -> io::Result<Listener> {
        Ok(match transport {
            Transport::Tcp => Listener::Tcp(TcpListener::bind("127.0.0.1:0")?),
            Transport::Uds => Listener::Uds(UnixListener::bind(uds_path)?),
        })
    }

    /// The address string a peer passes to [`connect`]: `host:port` for
    /// TCP, the socket path for UDS.
    pub fn addr_string(&self) -> io::Result<String> {
        Ok(match self {
            Listener::Tcp(l) => l.local_addr()?.to_string(),
            Listener::Uds(l) => {
                let addr = l.local_addr()?;
                let path = addr.as_pathname().ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "unnamed unix socket")
                })?;
                path.to_string_lossy().into_owned()
            }
        })
    }

    /// Accept one connection, polling with a deadline so a dead peer (or a
    /// child that never came up) turns into an error instead of a hang.
    /// `give_up` is polled between attempts for early abort.
    pub fn accept_deadline(
        &self,
        timeout: Duration,
        give_up: &dyn Fn() -> Option<String>,
    ) -> io::Result<Stream> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(true)?,
            Listener::Uds(l) => l.set_nonblocking(true)?,
        }
        let deadline = Instant::now() + timeout;
        loop {
            let got = match self {
                Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
                Listener::Uds(l) => l.accept().map(|(s, _)| Stream::Uds(s)),
            };
            match got {
                Ok(stream) => {
                    match &stream {
                        Stream::Tcp(s) => s.set_nonblocking(false)?,
                        Stream::Uds(s) => s.set_nonblocking(false)?,
                    }
                    stream.tune();
                    return Ok(stream);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if let Some(why) = give_up() {
                        return Err(io::Error::other(why));
                    }
                    if Instant::now() >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "timed out waiting for a peer connection",
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// Connect to a peer address produced by [`Listener::addr_string`],
/// retrying briefly (the peer may still be binding).
pub fn connect(transport: Transport, addr: &str, timeout: Duration) -> io::Result<Stream> {
    let deadline = Instant::now() + timeout;
    loop {
        let got = match transport {
            Transport::Tcp => TcpStream::connect(addr).map(Stream::Tcp),
            Transport::Uds => UnixStream::connect(addr).map(Stream::Uds),
        };
        match got {
            Ok(stream) => {
                stream.tune();
                return Ok(stream);
            }
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(e);
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}
