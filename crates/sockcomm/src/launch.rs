//! Rendezvous launcher and child-rank runtime.
//!
//! A sockets world is `p` OS processes plus the launcher that forked them.
//! Because a closure cannot cross `exec`, the entry point travels by
//! *name*: the launcher re-execs its own binary with `SOCKCOMM_*`
//! environment variables, and the child binary calls [`child_rank`] with
//! the same entry name early in `main` — on a match the call never
//! returns (it runs the rank and exits the process); otherwise it is a
//! no-op and the binary continues as a normal parent.
//!
//! ## Rendezvous protocol
//!
//! 1. Launcher binds a control listener (UDS socket in a scratch dir, or
//!    TCP on loopback), spawns `p` children with rank/size/entry/address
//!    in the environment.
//! 2. Each child connects to the control address, sends `Hello(rank)`,
//!    binds its own data listener, and sends `Addr(listen address)`.
//! 3. The launcher answers each child with `Params` (encoded entry
//!    parameters) and `Table` (every rank's data address).
//! 4. Children build the data mesh: rank `j` connects to every rank
//!    `i < j` (introducing itself with `Hello`), accepts from every rank
//!    `> j`. One reader thread per peer then feeds decoded `Data` frames
//!    into the rank's bounded mailbox.
//! 5. Each child runs the entry function and ships `Result` back on the
//!    control connection; the launcher collects `p` results.
//!
//! ## Teardown and peer death
//!
//! Clean teardown is a close barrier: a rank sends `Goodbye` on every
//! data link after its entry function returns, and closes nothing until it
//! has *received* a goodbye from every peer. EOF after goodbye is normal;
//! EOF (or `ECONNRESET`, or a failed write) without one means the peer
//! process died — the observing rank records which one, aborts its own
//! collectives, and reports the dead rank to the launcher, which kills the
//! remaining children and surfaces [`SockError::PeerDeath`] naming the
//! dead rank. Nothing waits forever on a corpse.

use crate::comm::{SockAborted, SockComm};
use crate::frame::{read_frame, write_frame, Frame, FrameKind};
use crate::net::{connect, Listener, Stream, Transport};
use crate::universe::{PeerLink, SockUniverse};
use comm::mailbox::Envelope;
use comm::Wire;
use std::cell::RefCell;
use std::io::{self, BufWriter};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Environment variable carrying the child's world rank.
pub const ENV_RANK: &str = "SOCKCOMM_RANK";
const ENV_SIZE: &str = "SOCKCOMM_SIZE";
const ENV_ENTRY: &str = "SOCKCOMM_ENTRY";
const ENV_CTL: &str = "SOCKCOMM_CTL";
const ENV_TRANSPORT: &str = "SOCKCOMM_TRANSPORT";
const ENV_DIR: &str = "SOCKCOMM_DIR";
const ENV_CORES: &str = "SOCKCOMM_CORES";
const ENV_MBCAP: &str = "SOCKCOMM_MBCAP";

/// Exit code a child uses after reporting an abort.
const ABORT_EXIT: i32 = 101;

/// How a sockets world can fail.
#[derive(Debug)]
pub enum SockError {
    /// A rank process died mid-run (killed, crashed, or exited without
    /// completing the protocol). `dead` is its world rank.
    PeerDeath {
        /// World rank of the process that died.
        dead: usize,
        /// What was observed (who reported it, what the socket said).
        detail: String,
    },
    /// A rank's entry function panicked (the rank itself reported before
    /// exiting, so this is a *logic* failure, not a dead process).
    Panic {
        /// World rank that panicked.
        rank: usize,
        /// The panic message.
        detail: String,
    },
    /// The world never got off the ground (spawn failure, rendezvous
    /// timeout, bad configuration).
    Launch(String),
}

impl std::fmt::Display for SockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::PeerDeath { dead, detail } => {
                write!(f, "rank {dead} died mid-run: {detail}")
            }
            Self::Panic { rank, detail } => write!(f, "rank {rank} panicked: {detail}"),
            Self::Launch(msg) => write!(f, "launch failed: {msg}"),
        }
    }
}

impl std::error::Error for SockError {}

/// What a completed sockets world returns.
#[derive(Debug)]
pub struct SockReport<R> {
    /// Per-rank results of the entry function, indexed by world rank.
    pub results: Vec<R>,
    /// Launcher-measured wall seconds from spawn to last result (includes
    /// process startup and rendezvous — see EXPERIMENTS.md).
    pub wall_s: f64,
    /// Each rank's own wall seconds from mesh-up to result.
    pub per_rank_wall: Vec<f64>,
    /// Total point-to-point messages sent across all ranks.
    pub messages: u64,
    /// Total encoded payload bytes sent across all ranks.
    pub bytes: u64,
}

/// Builder + launcher for a process-per-rank world.
pub struct SocketWorld {
    size: usize,
    transport: Transport,
    cores_per_node: usize,
    mailbox_capacity: usize,
    child_args: Option<Vec<String>>,
    launch_timeout: Duration,
}

static WORLD_SEQ: AtomicU64 = AtomicU64::new(0);

impl SocketWorld {
    /// A world of `size` rank processes over Unix-domain sockets.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "world size must be at least 1");
        Self {
            size,
            transport: Transport::Uds,
            cores_per_node: size.max(1),
            mailbox_capacity: (8 * size).max(256),
            child_args: None,
            launch_timeout: Duration::from_secs(60),
        }
    }

    /// Select the socket family (default: Unix-domain).
    pub fn transport(mut self, t: Transport) -> Self {
        self.transport = t;
        self
    }

    /// Cores per simulated node (shapes `Communicator::node`; default:
    /// all ranks on one node).
    pub fn cores_per_node(mut self, c: usize) -> Self {
        assert!(c > 0, "cores_per_node must be at least 1");
        self.cores_per_node = c;
        self
    }

    /// Per-rank mailbox capacity in envelopes (default `max(8p, 256)`,
    /// same shape as the threads backend).
    pub fn mailbox_capacity(mut self, cap: usize) -> Self {
        self.mailbox_capacity = cap;
        self
    }

    /// Arguments passed to re-exec'd rank processes. Default: the
    /// launcher's own arguments (`std::env::args().skip(1)`), which is
    /// right for binaries that call [`child_rank`] at the top of `main`.
    /// Libtest-harness test binaries must override this to route children
    /// into a dispatch `#[test]` (e.g. `["sockcomm_child_entry",
    /// "--exact", "--nocapture"]`).
    pub fn child_args<S: Into<String>>(mut self, args: impl IntoIterator<Item = S>) -> Self {
        self.child_args = Some(args.into_iter().map(Into::into).collect());
        self
    }

    /// Rendezvous deadline (default 60 s): how long the launcher waits for
    /// children to come up before declaring a launch failure.
    pub fn launch_timeout(mut self, d: Duration) -> Self {
        self.launch_timeout = d;
        self
    }

    /// Launch the world: fork `size` rank processes re-execing the current
    /// binary, rendezvous, run the [`child_rank`] entry named `entry` with
    /// `params` on every rank, and collect the per-rank results.
    pub fn run<P: Wire, R: Wire>(
        &self,
        entry: &str,
        params: &P,
    ) -> Result<SockReport<R>, SockError> {
        assert!(
            std::env::var_os(ENV_RANK).is_none(),
            "SocketWorld::run reached inside a sockcomm child process: no child_rank call \
             matched entry {:?} before parent code ran — this would fork-bomb. Check that the \
             binary calls child_rank with the same entry name before launching worlds.",
            std::env::var(ENV_ENTRY).unwrap_or_default()
        );
        let dir = std::env::temp_dir().join(format!(
            "sockcomm-{}-{}",
            std::process::id(),
            WORLD_SEQ.fetch_add(1, Ordering::SeqCst)
        ));
        let result = self.run_in_dir(entry, params, &dir);
        let _ = std::fs::remove_dir_all(&dir);
        result
    }

    fn run_in_dir<P: Wire, R: Wire>(
        &self,
        entry: &str,
        params: &P,
        dir: &Path,
    ) -> Result<SockReport<R>, SockError> {
        let p = self.size;
        let launch_err = |msg: String| SockError::Launch(msg);
        std::fs::create_dir_all(dir)
            .map_err(|e| launch_err(format!("scratch dir {}: {e}", dir.display())))?;
        let ctl_listener = Listener::bind(self.transport, &dir.join("ctl.sock"))
            .map_err(|e| launch_err(format!("bind control listener: {e}")))?;
        let ctl_addr = ctl_listener
            .addr_string()
            .map_err(|e| launch_err(format!("control listener address: {e}")))?;

        let exe = std::env::current_exe().map_err(|e| launch_err(format!("current_exe: {e}")))?;
        let args: Vec<String> = self
            .child_args
            .clone()
            .unwrap_or_else(|| std::env::args().skip(1).collect());

        let start = Instant::now();
        let children: RefCell<Vec<(usize, Child)>> = RefCell::new(Vec::with_capacity(p));
        let kill_all = |children: &RefCell<Vec<(usize, Child)>>| {
            for (_, child) in children.borrow_mut().iter_mut() {
                let _ = child.kill();
                let _ = child.wait();
            }
        };
        for rank in 0..p {
            let spawned = Command::new(&exe)
                .args(&args)
                .env(ENV_RANK, rank.to_string())
                .env(ENV_SIZE, p.to_string())
                .env(ENV_ENTRY, entry)
                .env(ENV_CTL, &ctl_addr)
                .env(ENV_TRANSPORT, self.transport.as_str())
                .env(ENV_DIR, dir)
                .env(ENV_CORES, self.cores_per_node.to_string())
                .env(ENV_MBCAP, self.mailbox_capacity.to_string())
                .stdin(Stdio::null())
                .spawn();
            match spawned {
                Ok(child) => children.borrow_mut().push((rank, child)),
                Err(e) => {
                    kill_all(&children);
                    return Err(launch_err(format!("spawn rank {rank}: {e}")));
                }
            }
        }

        // A child that exits during rendezvous (e.g. its binary never
        // reaches a matching child_rank call) must become a diagnostic,
        // not a hang.
        let give_up = || -> Option<String> {
            for (rank, child) in children.borrow_mut().iter_mut() {
                if let Ok(Some(status)) = child.try_wait() {
                    return Some(format!(
                        "rank {rank} process exited during rendezvous ({status}); does the \
                         binary reach a matching child_rank({entry:?}) call?"
                    ));
                }
            }
            None
        };

        // Collect the control connection + data address of every rank.
        let mut ctl_streams: Vec<Option<Stream>> = (0..p).map(|_| None).collect();
        let mut data_addrs: Vec<String> = vec![String::new(); p];
        for _ in 0..p {
            let outcome = (|| -> io::Result<(usize, Stream, String)> {
                let mut stream = ctl_listener.accept_deadline(self.launch_timeout, &give_up)?;
                stream.set_read_timeout(Some(self.launch_timeout))?;
                let hello = read_frame(&mut stream)?
                    .ok_or_else(|| io::Error::other("control connection closed before hello"))?;
                if hello.kind != FrameKind::Hello {
                    return Err(io::Error::other(format!(
                        "expected hello on control connection, got {:?}",
                        hello.kind
                    )));
                }
                let rank = hello.src as usize;
                let addr_frame = read_frame(&mut stream)?
                    .ok_or_else(|| io::Error::other("control connection closed before addr"))?;
                if addr_frame.kind != FrameKind::Addr {
                    return Err(io::Error::other(format!(
                        "expected addr on control connection, got {:?}",
                        addr_frame.kind
                    )));
                }
                let addr = String::from_utf8(addr_frame.payload)
                    .map_err(|e| io::Error::other(format!("bad addr payload: {e}")))?;
                Ok((rank, stream, addr))
            })();
            match outcome {
                Ok((rank, stream, addr)) => {
                    if rank >= p || ctl_streams[rank].is_some() {
                        kill_all(&children);
                        return Err(launch_err(format!("bogus or duplicate hello rank {rank}")));
                    }
                    ctl_streams[rank] = Some(stream);
                    data_addrs[rank] = addr;
                }
                Err(e) => {
                    kill_all(&children);
                    return Err(launch_err(format!("rendezvous: {e}")));
                }
            }
        }

        // Ship params + the full address table to every rank.
        let mut params_bytes = Vec::new();
        params.put(&mut params_bytes);
        let mut table_bytes = Vec::new();
        data_addrs.to_vec().put(&mut table_bytes);
        for (rank, slot) in ctl_streams.iter_mut().enumerate() {
            let stream = slot.as_mut().expect("all control connections collected");
            let sent = write_frame(
                stream,
                &Frame::control(FrameKind::Params, rank as u32, params_bytes.clone()),
            )
            .and_then(|()| {
                write_frame(
                    stream,
                    &Frame::control(FrameKind::Table, rank as u32, table_bytes.clone()),
                )
            });
            if let Err(e) = sent {
                kill_all(&children);
                return Err(launch_err(format!("sending params to rank {rank}: {e}")));
            }
        }

        // One reader thread per control connection feeds a single event
        // queue; the launcher then just waits for p results or the first
        // sign of death.
        enum CtlEvent {
            Frame(usize, Frame),
            Closed(usize, String),
        }
        let (tx, rx) = mpsc::channel::<CtlEvent>();
        let mut reader_handles = Vec::with_capacity(p);
        for (rank, slot) in ctl_streams.iter_mut().enumerate() {
            let mut stream = slot.take().expect("all control connections collected");
            // Result frames arrive whenever the rank finishes: no deadline.
            if let Err(e) = stream.set_read_timeout(None) {
                kill_all(&children);
                return Err(launch_err(format!("clearing control timeout: {e}")));
            }
            let tx = tx.clone();
            reader_handles.push(std::thread::spawn(move || loop {
                match read_frame(&mut stream) {
                    Ok(Some(frame)) => {
                        if tx.send(CtlEvent::Frame(rank, frame)).is_err() {
                            return;
                        }
                    }
                    Ok(None) => {
                        let _ = tx.send(CtlEvent::Closed(rank, "exited".to_string()));
                        return;
                    }
                    Err(e) => {
                        let _ = tx.send(CtlEvent::Closed(rank, e.to_string()));
                        return;
                    }
                }
            }));
        }
        drop(tx);

        let mut results: Vec<Option<(R, u64, u64, f64)>> = (0..p).map(|_| None).collect();
        let mut done = 0usize;
        let failure: Option<SockError> = loop {
            if done == p {
                break None;
            }
            match rx.recv() {
                Ok(CtlEvent::Frame(rank, frame)) => match frame.kind {
                    FrameKind::Result => {
                        let mut src = &frame.payload[..];
                        match <(R, u64, u64, f64)>::get(&mut src) {
                            Some(tuple) if results[rank].is_none() => {
                                results[rank] = Some(tuple);
                                done += 1;
                            }
                            _ => {
                                break Some(launch_err(format!(
                                    "undecodable or duplicate result from rank {rank}"
                                )))
                            }
                        }
                    }
                    FrameKind::Abort => {
                        let mut src = &frame.payload[..];
                        break Some(match <(Option<u64>, String)>::get(&mut src) {
                            Some((Some(dead), detail)) => SockError::PeerDeath {
                                dead: dead as usize,
                                detail,
                            },
                            Some((None, detail)) => SockError::Panic { rank, detail },
                            None => launch_err(format!("undecodable abort from rank {rank}")),
                        });
                    }
                    other => {
                        break Some(launch_err(format!(
                            "unexpected {other:?} frame on control connection from rank {rank}"
                        )))
                    }
                },
                Ok(CtlEvent::Closed(rank, detail)) => {
                    if results[rank].is_none() {
                        break Some(SockError::PeerDeath {
                            dead: rank,
                            detail: format!(
                                "control connection lost before a result arrived ({detail})"
                            ),
                        });
                    }
                    // EOF after this rank's result: normal exit.
                }
                Err(_) => {
                    break Some(launch_err(
                        "all control connections lost before completion".to_string(),
                    ))
                }
            }
        };

        if let Some(err) = failure {
            // An abort report can race the corpse's own control-EOF: a rank
            // observing a *cascade* shutdown may name the wrong peer. The
            // processes themselves are ground truth — prefer a child that
            // exited without delivering a result (and not via the orderly
            // abort exit) as the dead rank.
            let err = if matches!(err, SockError::PeerDeath { .. } | SockError::Panic { .. }) {
                std::thread::sleep(Duration::from_millis(50));
                let mut corpse = None;
                for (rank, child) in children.borrow_mut().iter_mut() {
                    if results[*rank].is_some() {
                        continue;
                    }
                    if let Ok(Some(status)) = child.try_wait() {
                        if status.code() != Some(ABORT_EXIT) {
                            corpse = Some((*rank, status));
                            break;
                        }
                    }
                }
                match corpse {
                    Some((rank, status)) => SockError::PeerDeath {
                        dead: rank,
                        detail: format!("process exited mid-run ({status})"),
                    },
                    None => err,
                }
            } else {
                err
            };
            kill_all(&children);
            for h in reader_handles {
                let _ = h.join();
            }
            return Err(err);
        }

        let wall_s = start.elapsed().as_secs_f64();
        for (_, child) in children.borrow_mut().iter_mut() {
            let _ = child.wait();
        }
        for h in reader_handles {
            let _ = h.join();
        }
        let mut out_results = Vec::with_capacity(p);
        let mut per_rank_wall = Vec::with_capacity(p);
        let (mut messages, mut bytes) = (0u64, 0u64);
        for slot in results {
            let (r, m, b, w) = slot.expect("all results collected");
            out_results.push(r);
            per_rank_wall.push(w);
            messages += m;
            bytes += b;
        }
        Ok(SockReport {
            results: out_results,
            wall_s,
            per_rank_wall,
            messages,
            bytes,
        })
    }
}

/// Child-rank environment, parsed from `SOCKCOMM_*`.
struct ChildEnv {
    rank: usize,
    size: usize,
    entry: String,
    ctl_addr: String,
    transport: Transport,
    dir: PathBuf,
    cores_per_node: usize,
    mailbox_capacity: usize,
}

fn child_env() -> Option<ChildEnv> {
    let rank = std::env::var(ENV_RANK).ok()?;
    let parse = |key: &str| -> Option<String> { std::env::var(key).ok() };
    Some(ChildEnv {
        rank: rank.parse().ok()?,
        size: parse(ENV_SIZE)?.parse().ok()?,
        entry: parse(ENV_ENTRY)?,
        ctl_addr: parse(ENV_CTL)?,
        transport: Transport::parse(&parse(ENV_TRANSPORT)?)?,
        dir: PathBuf::from(parse(ENV_DIR)?),
        cores_per_node: parse(ENV_CORES)?.parse().ok()?,
        mailbox_capacity: parse(ENV_MBCAP)?.parse().ok()?,
    })
}

/// Run `entry` if this process is a sockcomm child spawned for it;
/// otherwise do nothing.
///
/// Call this (once per entry name the binary supports) near the top of
/// `main`, before any expensive parent work. When the process was spawned
/// by [`SocketWorld::run`] with a matching entry name, this function
/// joins the rendezvous, runs `f` as one rank of the world, ships the
/// result to the launcher, and **exits the process** — it only returns
/// when this process is not a child for `entry`.
pub fn child_rank<P: Wire, R: Wire>(entry: &str, f: impl FnOnce(&SockComm, P) -> R) {
    let Some(env) = child_env() else {
        return;
    };
    if env.entry != entry {
        return;
    }
    let rank = env.rank;
    match run_child(&env, f) {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            eprintln!("sockcomm rank {rank}: rendezvous failed: {e}");
            std::process::exit(ABORT_EXIT);
        }
    }
}

/// Read the expected rendezvous frame kind or fail with context.
fn expect_frame(stream: &mut Stream, want: FrameKind) -> io::Result<Frame> {
    let frame = read_frame(stream)?
        .ok_or_else(|| io::Error::other(format!("connection closed waiting for {want:?}")))?;
    if frame.kind != want {
        return Err(io::Error::other(format!(
            "expected {want:?}, got {:?}",
            frame.kind
        )));
    }
    Ok(frame)
}

fn run_child<P: Wire, R: Wire>(
    env: &ChildEnv,
    f: impl FnOnce(&SockComm, P) -> R,
) -> io::Result<()> {
    let me = env.rank;
    let p = env.size;
    let timeout = Duration::from_secs(60);

    // Control connection: introduce ourselves, publish our data address.
    let mut ctl = connect(env.transport, &env.ctl_addr, timeout)?;
    write_frame(
        &mut ctl,
        &Frame::control(FrameKind::Hello, me as u32, Vec::new()),
    )?;
    let data_listener = Listener::bind(env.transport, &env.dir.join(format!("d{me}.sock")))?;
    let data_addr = data_listener.addr_string()?;
    write_frame(
        &mut ctl,
        &Frame::control(FrameKind::Addr, me as u32, data_addr.into_bytes()),
    )?;

    ctl.set_read_timeout(Some(timeout))?;
    let params_frame = expect_frame(&mut ctl, FrameKind::Params)?;
    let table_frame = expect_frame(&mut ctl, FrameKind::Table)?;
    ctl.set_read_timeout(None)?;
    let params = {
        let mut src = &params_frame.payload[..];
        P::get(&mut src).ok_or_else(|| io::Error::other("undecodable params payload"))?
    };
    let table: Vec<String> = {
        let mut src = &table_frame.payload[..];
        Vec::<String>::get(&mut src).ok_or_else(|| io::Error::other("undecodable addr table"))?
    };
    if table.len() != p {
        return Err(io::Error::other("address table size mismatch"));
    }

    // Data mesh: connect down, accept up. Each link is one stream; the
    // write half goes into the universe, a read-half clone into a reader
    // thread.
    let mut links: Vec<Option<PeerLink>> = (0..p).map(|_| None).collect();
    let mut read_halves: Vec<(usize, Stream)> = Vec::with_capacity(p.saturating_sub(1));
    for peer in 0..me {
        let mut stream = connect(env.transport, &table[peer], timeout)?;
        write_frame(
            &mut stream,
            &Frame::control(FrameKind::Hello, me as u32, Vec::new()),
        )?;
        read_halves.push((peer, stream.try_clone()?));
        links[peer] = Some(PeerLink {
            raw: stream.try_clone()?,
            writer: std::sync::Mutex::new(BufWriter::new(stream)),
        });
    }
    for _ in me + 1..p {
        let mut stream = data_listener.accept_deadline(timeout, &|| None)?;
        stream.set_read_timeout(Some(timeout))?;
        let hello = expect_frame(&mut stream, FrameKind::Hello)?;
        stream.set_read_timeout(None)?;
        let peer = hello.src as usize;
        if peer <= me || peer >= p || links[peer].is_some() {
            return Err(io::Error::other(format!("bogus hello from peer {peer}")));
        }
        read_halves.push((peer, stream.try_clone()?));
        links[peer] = Some(PeerLink {
            raw: stream.try_clone()?,
            writer: std::sync::Mutex::new(BufWriter::new(stream)),
        });
    }

    let uni = Arc::new(SockUniverse::new(
        p,
        me,
        env.cores_per_node,
        env.mailbox_capacity,
        links,
    ));
    let mut readers = Vec::with_capacity(read_halves.len());
    for (peer, stream) in read_halves {
        let uni = Arc::clone(&uni);
        readers.push(std::thread::spawn(move || reader_loop(stream, peer, uni)));
    }

    let members: Arc<[usize]> = (0..p).collect();
    let comm = SockComm::new(Arc::clone(&uni), 0, members, me);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&comm, params)));

    match outcome {
        Ok(result) => {
            // Close barrier: goodbye everyone, then wait for everyone's
            // goodbye before touching the sockets.
            let mut teardown_ok = true;
            for peer in (0..p).filter(|&w| w != me) {
                if let Err(e) = uni.send_goodbye(peer) {
                    uni.peer_died(peer, format!("goodbye send failed: {e}"));
                    teardown_ok = false;
                    break;
                }
            }
            if teardown_ok && uni.wait_goodbyes() {
                for r in readers {
                    let _ = r.join();
                }
                let wall = uni.start.elapsed().as_secs_f64();
                let mut payload = Vec::new();
                (result, uni.stats.messages(), uni.stats.bytes(), wall).put(&mut payload);
                write_frame(
                    &mut ctl,
                    &Frame::control(FrameKind::Result, me as u32, payload),
                )?;
                Ok(())
            } else {
                abort_and_exit(&uni, &mut ctl, me, "world aborted during teardown");
            }
        }
        Err(panic_payload) => {
            let detail = if panic_payload.downcast_ref::<SockAborted>().is_some() {
                "aborted while a collective or receive was in flight".to_string()
            } else if let Some(s) = panic_payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = panic_payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "rank panicked (non-string payload)".to_string()
            };
            abort_and_exit(&uni, &mut ctl, me, &detail);
        }
    }
}

/// Report an abort to the launcher (naming the dead peer if one was
/// observed), print the diagnostic, and exit. Never returns.
fn abort_and_exit(uni: &Arc<SockUniverse>, ctl: &mut Stream, me: usize, detail: &str) -> ! {
    uni.abort();
    let (dead, message) = match uni.dead_peer() {
        Some(dp) => (
            Some(dp.rank as u64),
            format!("peer rank {} died: {} ({detail})", dp.rank, dp.detail),
        ),
        None => (None, detail.to_string()),
    };
    uni.shutdown_links();
    let mut payload = Vec::new();
    (dead, message.clone()).put(&mut payload);
    let _ = write_frame(ctl, &Frame::control(FrameKind::Abort, me as u32, payload));
    eprintln!("sockcomm rank {me}: {message}");
    std::process::exit(ABORT_EXIT);
}

/// Per-peer socket reader: decodes frames and feeds the rank's mailbox
/// until the peer says goodbye (clean) or the connection dies (peer
/// death). Runs on its own thread; a full mailbox blocks it, which is the
/// backpressure path.
fn reader_loop(mut stream: Stream, peer: usize, uni: Arc<SockUniverse>) {
    loop {
        match read_frame(&mut stream) {
            Ok(Some(frame)) if frame.kind == FrameKind::Data => {
                let bytes = frame.payload.len();
                let delivered = uni.mailbox.push(
                    Envelope {
                        ctx: frame.ctx,
                        src: frame.src as usize,
                        tag: frame.tag,
                        data: Box::new(frame.payload),
                        bytes,
                    },
                    &uni.aborted,
                );
                if !delivered {
                    return; // world aborted while we were blocked
                }
            }
            Ok(Some(frame)) if frame.kind == FrameKind::Goodbye => {
                uni.note_goodbye();
                return;
            }
            Ok(Some(frame)) => {
                uni.peer_died(
                    peer,
                    format!("unexpected {:?} frame on data connection", frame.kind),
                );
                return;
            }
            Ok(None) => {
                if !uni.is_aborted() {
                    uni.peer_died(peer, "connection closed (EOF) without goodbye".to_string());
                }
                return;
            }
            Err(e) => {
                if !uni.is_aborted() {
                    uni.peer_died(peer, format!("connection error: {e}"));
                }
                return;
            }
        }
    }
}
