//! Length-prefixed framing for the sockets backend.
//!
//! Every byte that crosses a sockcomm connection is part of a frame:
//!
//! ```text
//! [len: u64][kind: u8][ctx: u64][src: u32][tag: u64][payload: len - 21 bytes]
//! ```
//!
//! `len` counts everything after itself (kind + header + payload) so a
//! reader can pull exactly one frame off the stream without inspecting the
//! payload. The `(ctx, src, tag)` header carries the mailbox-matching key
//! for [`FrameKind::Data`] frames; control frames reuse the same layout
//! (usually with `ctx = 0`, `tag = 0`) so there is exactly one codec to
//! get right. Integers are host-native byte order — the launcher re-execs
//! the same binary on the same host for every rank, so both ends agree by
//! construction (see `comm::wire`).
//!
//! The codec is split into pure buffer functions ([`encode_frame`] /
//! [`decode_frame`]) that the property tests drive, and thin IO wrappers
//! ([`write_frame`] / [`read_frame`]) used by the transport.

use std::io::{self, Read, Write};

/// Hard cap on a frame's payload size. Nothing in a sort exchange comes
/// near this (the exchange ships at most one rank's partition per frame);
/// its real job is to reject garbage length prefixes — a corrupt or
/// malicious `len` must fail fast, not allocate 16 EiB.
pub const MAX_PAYLOAD: usize = 1 << 32;

/// Bytes of frame after the length prefix, before the payload:
/// kind (1) + ctx (8) + src (4) + tag (8).
pub const HEADER_BYTES: usize = 21;

/// What a frame means. The discriminants are the wire encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Rank introduction on a new connection (`src` = sender's rank).
    Hello = 1,
    /// Child → launcher: payload is the child's data-plane listen address.
    Addr = 2,
    /// Launcher → child: payload is the encoded entry parameters.
    Params = 3,
    /// Launcher → child: payload is the encoded peer address table.
    Table = 4,
    /// Rank → rank: a message for the `(ctx, src, tag)` mailbox.
    Data = 5,
    /// Rank → rank: orderly close. EOF *after* a goodbye is teardown;
    /// EOF *without* one is a dead peer.
    Goodbye = 6,
    /// Child → launcher: payload is the encoded entry result + stats.
    Result = 7,
    /// Child → launcher: payload names a dead peer and the diagnostic.
    Abort = 8,
}

impl FrameKind {
    fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(Self::Hello),
            2 => Some(Self::Addr),
            3 => Some(Self::Params),
            4 => Some(Self::Table),
            5 => Some(Self::Data),
            6 => Some(Self::Goodbye),
            7 => Some(Self::Result),
            8 => Some(Self::Abort),
            _ => None,
        }
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What the frame means.
    pub kind: FrameKind,
    /// Communicator context id (0 for control frames).
    pub ctx: u64,
    /// Sender's world rank.
    pub src: u32,
    /// Mailbox tag (0 for control frames).
    pub tag: u64,
    /// Frame payload.
    pub payload: Vec<u8>,
}

impl Frame {
    /// A control frame: `(ctx, tag)` zero, just kind, source and payload.
    pub fn control(kind: FrameKind, src: u32, payload: Vec<u8>) -> Self {
        Self {
            kind,
            ctx: 0,
            src,
            tag: 0,
            payload,
        }
    }
}

/// Why a frame failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ends before the advertised frame does.
    Truncated,
    /// The length prefix exceeds [`MAX_PAYLOAD`] (or is shorter than the
    /// fixed header, which no encoder produces).
    BadLength(u64),
    /// Unknown frame-kind discriminant.
    BadKind(u8),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => write!(f, "truncated frame"),
            Self::BadLength(len) => write!(
                f,
                "bad frame length {len} (valid: {HEADER_BYTES}..={})",
                HEADER_BYTES + MAX_PAYLOAD
            ),
            Self::BadKind(k) => write!(f, "unknown frame kind {k}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Append the frame's encoding to `out`.
pub fn encode_frame(frame: &Frame, out: &mut Vec<u8>) {
    let len = (HEADER_BYTES + frame.payload.len()) as u64;
    out.extend_from_slice(&len.to_ne_bytes());
    out.push(frame.kind as u8);
    out.extend_from_slice(&frame.ctx.to_ne_bytes());
    out.extend_from_slice(&frame.src.to_ne_bytes());
    out.extend_from_slice(&frame.tag.to_ne_bytes());
    out.extend_from_slice(&frame.payload);
}

fn fixed<const N: usize>(src: &[u8], at: usize) -> Result<[u8; N], FrameError> {
    src.get(at..at + N)
        .and_then(|s| <[u8; N]>::try_from(s).ok())
        .ok_or(FrameError::Truncated)
}

/// Decode one frame from the front of `src`, returning it and the number
/// of bytes consumed.
pub fn decode_frame(src: &[u8]) -> Result<(Frame, usize), FrameError> {
    let len = u64::from_ne_bytes(fixed::<8>(src, 0)?);
    if (len as usize) < HEADER_BYTES || len as usize > HEADER_BYTES + MAX_PAYLOAD {
        return Err(FrameError::BadLength(len));
    }
    let body_len = len as usize;
    if src.len() < 8 + body_len {
        return Err(FrameError::Truncated);
    }
    let kind_byte = src[8];
    let kind = FrameKind::from_u8(kind_byte).ok_or(FrameError::BadKind(kind_byte))?;
    let ctx = u64::from_ne_bytes(fixed::<8>(src, 9)?);
    let src_rank = u32::from_ne_bytes(fixed::<4>(src, 17)?);
    let tag = u64::from_ne_bytes(fixed::<8>(src, 21)?);
    let payload = src[8 + HEADER_BYTES..8 + body_len].to_vec();
    Ok((
        Frame {
            kind,
            ctx,
            src: src_rank,
            tag,
            payload,
        },
        8 + body_len,
    ))
}

/// Write one frame to a stream (single buffered write).
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    let mut buf = Vec::with_capacity(8 + HEADER_BYTES + frame.payload.len());
    encode_frame(frame, &mut buf);
    w.write_all(&buf)
}

/// Read exactly one frame from a stream. `Ok(None)` on clean EOF at a
/// frame boundary; an EOF mid-frame is an `UnexpectedEof` error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Frame>> {
    let mut len_buf = [0u8; 8];
    // Hand-rolled first read so EOF-before-any-byte is distinguishable
    // from EOF mid-prefix.
    let mut filled = 0;
    while filled < len_buf.len() {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame (length prefix)",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u64::from_ne_bytes(len_buf);
    if (len as usize) < HEADER_BYTES || len as usize > HEADER_BYTES + MAX_PAYLOAD {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            FrameError::BadLength(len).to_string(),
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let mut buf = Vec::with_capacity(8 + body.len());
    buf.extend_from_slice(&len_buf);
    buf.extend_from_slice(&body);
    let (frame, consumed) = decode_frame(&buf)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    debug_assert_eq!(consumed, buf.len());
    Ok(Some(frame))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_kinds() {
        for kind in [
            FrameKind::Hello,
            FrameKind::Addr,
            FrameKind::Params,
            FrameKind::Table,
            FrameKind::Data,
            FrameKind::Goodbye,
            FrameKind::Result,
            FrameKind::Abort,
        ] {
            let frame = Frame {
                kind,
                ctx: 0xDEAD_BEEF,
                src: 7,
                tag: 42,
                payload: vec![1, 2, 3, 4, 5],
            };
            let mut buf = Vec::new();
            encode_frame(&frame, &mut buf);
            let (back, used) = decode_frame(&buf).expect("valid frame");
            assert_eq!(back, frame);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn io_round_trip_through_a_cursor() {
        let frame = Frame::control(FrameKind::Result, 3, b"payload".to_vec());
        let mut buf = Vec::new();
        write_frame(&mut buf, &frame).expect("vec write");
        let mut cursor = std::io::Cursor::new(buf);
        let back = read_frame(&mut cursor).expect("read").expect("one frame");
        assert_eq!(back, frame);
        assert!(read_frame(&mut cursor).expect("clean EOF").is_none());
    }

    #[test]
    fn eof_mid_frame_is_an_error_not_none() {
        let frame = Frame::control(FrameKind::Hello, 0, vec![9; 64]);
        let mut buf = Vec::new();
        write_frame(&mut buf, &frame).expect("vec write");
        buf.truncate(buf.len() - 1);
        let mut cursor = std::io::Cursor::new(buf);
        let err = read_frame(&mut cursor).expect_err("mid-frame EOF");
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_length_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u64::MAX.to_ne_bytes());
        buf.extend_from_slice(&[0u8; 32]);
        assert!(matches!(
            decode_frame(&buf),
            Err(FrameError::BadLength(u64::MAX))
        ));
        let mut cursor = std::io::Cursor::new(buf);
        let err = read_frame(&mut cursor).expect_err("oversized");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn unknown_kind_rejected() {
        let frame = Frame::control(FrameKind::Hello, 0, Vec::new());
        let mut buf = Vec::new();
        encode_frame(&frame, &mut buf);
        buf[8] = 250;
        assert_eq!(decode_frame(&buf), Err(FrameError::BadKind(250)));
    }
}
