//! Per-process shared state for one rank of a sockets world.
//!
//! Where the threads backend has one `Universe` shared by every rank, the
//! sockets backend has one [`SockUniverse`] *per OS process*: this rank's
//! mailbox, its links to every peer, the abort flag its socket-reader
//! threads trip when a peer dies, and the network counters it ships back
//! to the launcher with its result.

use crate::frame::{write_frame, Frame, FrameKind};
use crate::net::Stream;
use comm::mailbox::Mailbox;
use std::io::{BufWriter, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Point-to-point traffic counters for this rank process.
#[derive(Default)]
pub struct NetStats {
    messages: AtomicU64,
    bytes: AtomicU64,
}

impl NetStats {
    pub(crate) fn record(&self, bytes: usize) {
        self.messages.fetch_add(1, Ordering::SeqCst);
        self.bytes.fetch_add(bytes as u64, Ordering::SeqCst);
    }

    /// Messages sent by this rank (self-deliveries through the local
    /// mailbox included, mirroring the threads backend's accounting).
    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::SeqCst)
    }

    /// Encoded payload bytes sent by this rank.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::SeqCst)
    }
}

/// The first peer death observed by this process.
#[derive(Debug, Clone)]
pub struct DeadPeer {
    /// World rank of the peer whose connection dropped without a goodbye.
    pub rank: usize,
    /// What the socket reported (EOF, ECONNRESET, ...).
    pub detail: String,
}

/// Write half of the link to one peer. Sends from the rank thread and the
/// occasional teardown goodbye serialize on the mutex; the buffered writer
/// is flushed per frame (a frame is the unit of progress — there is no
/// later "batch" moment that could flush it).
pub struct PeerLink {
    pub(crate) writer: Mutex<BufWriter<Stream>>,
    /// Unbuffered clone used to shut the socket down on abort, unblocking
    /// both this process's reader thread and the remote peer.
    pub(crate) raw: Stream,
}

/// Shared state for one rank process of a sockets world.
pub struct SockUniverse {
    pub(crate) size: usize,
    pub(crate) my_world_rank: usize,
    pub(crate) cores_per_node: usize,
    /// This rank's mailbox; socket reader threads push, the rank thread
    /// takes. Bounded: a full mailbox blocks the reader, which stops
    /// draining that peer's socket, which backpressures the sender through
    /// the kernel buffers.
    pub(crate) mailbox: Mailbox,
    /// `peers[w]` is the link to world rank `w` (`None` for self).
    pub(crate) peers: Vec<Option<PeerLink>>,
    pub(crate) aborted: AtomicBool,
    pub(crate) dead_peer: Mutex<Option<DeadPeer>>,
    pub(crate) stats: NetStats,
    pub(crate) recorder: telemetry::Recorder,
    pub(crate) start: Instant,
    /// Count of goodbye frames received; the close barrier waits for
    /// `size - 1` of them before tearing sockets down.
    goodbyes: Mutex<usize>,
    goodbye_or_abort: Condvar,
}

impl SockUniverse {
    pub(crate) fn new(
        size: usize,
        my_world_rank: usize,
        cores_per_node: usize,
        mailbox_capacity: usize,
        peers: Vec<Option<PeerLink>>,
    ) -> Self {
        let node_of: Vec<usize> = (0..size).map(|r| r / cores_per_node).collect();
        Self {
            size,
            my_world_rank,
            cores_per_node,
            mailbox: Mailbox::new(mailbox_capacity),
            peers,
            aborted: AtomicBool::new(false),
            dead_peer: Mutex::new(None),
            stats: NetStats::default(),
            recorder: telemetry::Recorder::new(node_of, false),
            start: Instant::now(),
            goodbyes: Mutex::new(0),
            goodbye_or_abort: Condvar::new(),
        }
    }

    pub(crate) fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::SeqCst)
    }

    /// Record a peer death (first one wins), abort the rank, and wake
    /// everything that might be blocked: the mailbox (rank thread waiting
    /// on a recv or a full queue) and the close barrier.
    pub(crate) fn peer_died(&self, rank: usize, detail: String) {
        {
            let mut dead = self.dead_peer.lock().expect("dead_peer mutex poisoned");
            if dead.is_none() {
                *dead = Some(DeadPeer { rank, detail });
            }
        }
        self.abort();
    }

    /// Abort without naming a dead peer (local failure paths).
    pub(crate) fn abort(&self) {
        self.aborted.store(true, Ordering::SeqCst);
        self.mailbox.interrupt();
        // Same lock-then-notify discipline as Mailbox::interrupt: the store
        // above cannot race past a barrier waiter between check and wait.
        drop(self.goodbyes.lock().expect("goodbye mutex poisoned"));
        self.goodbye_or_abort.notify_all();
    }

    /// The first observed peer death, if any.
    pub(crate) fn dead_peer(&self) -> Option<DeadPeer> {
        self.dead_peer
            .lock()
            .expect("dead_peer mutex poisoned")
            .clone()
    }

    /// Send one frame to world rank `dst`. `Err` means the link is gone —
    /// the caller decides whether that is a peer death (data sends) or
    /// ignorable (teardown best-effort).
    pub(crate) fn send_frame(&self, dst: usize, frame: &Frame) -> std::io::Result<()> {
        let link = self.peers[dst]
            .as_ref()
            .expect("no self-link: self-sends go through the mailbox");
        let mut w = link.writer.lock().expect("peer writer mutex poisoned");
        write_frame(&mut *w, frame)?;
        w.flush()
    }

    /// Send a goodbye to world rank `dst` (orderly-teardown marker).
    pub(crate) fn send_goodbye(&self, dst: usize) -> std::io::Result<()> {
        self.send_frame(
            dst,
            &Frame::control(FrameKind::Goodbye, self.my_world_rank as u32, Vec::new()),
        )
    }

    /// Called by a reader thread when its peer says goodbye.
    pub(crate) fn note_goodbye(&self) {
        let mut n = self.goodbyes.lock().expect("goodbye mutex poisoned");
        *n += 1;
        drop(n);
        self.goodbye_or_abort.notify_all();
    }

    /// Block until every peer has said goodbye (clean teardown) or the
    /// world aborted. Returns `true` on a clean barrier.
    pub(crate) fn wait_goodbyes(&self) -> bool {
        let mut n = self.goodbyes.lock().expect("goodbye mutex poisoned");
        loop {
            if self.is_aborted() {
                return false;
            }
            if *n >= self.size - 1 {
                return true;
            }
            n = self
                .goodbye_or_abort
                .wait(n)
                .expect("goodbye mutex poisoned while waiting");
        }
    }

    /// Shut down every peer socket (abort path): unblocks local reader
    /// threads and lets remote peers observe the failure promptly.
    pub(crate) fn shutdown_links(&self) {
        for link in self.peers.iter().flatten() {
            link.raw.shutdown();
        }
    }
}
