//! End-to-end sockets worlds: real rank processes over Unix-domain sockets
//! and TCP, exercising rendezvous, the shared collectives, communicator
//! splits, the async self-first exchange, and — critically — peer-death
//! detection (a rank killed mid-collective must become a diagnostic naming
//! the dead rank, never a hang).
//!
//! `harness = false`: the binary re-execs itself as the rank processes, so
//! `main` must reach the `child_rank` calls before any test logic runs.
//! The default `SocketWorld` child arguments (the parent's own argv) are
//! exactly right for this shape.

use comm::{AsyncExchange, Communicator};
use sockcomm::{child_rank, SockComm, SockError, SocketWorld, Transport};
use std::time::{Duration, Instant};

const P: usize = 4;

// ---- entry functions (run inside rank processes) -------------------------

fn hello_entry(comm: &SockComm, base: u64) -> u64 {
    comm.barrier();
    let ranks = comm.allgather(&[comm.rank() as u64]);
    assert_eq!(ranks, (0..comm.size() as u64).collect::<Vec<_>>());
    let token = comm.bcast(0, (comm.rank() == 0).then(|| vec![base]));
    let gathered = comm.gatherv(1, &[comm.rank() as u64 * 10]);
    if comm.rank() == 1 {
        let got: Vec<u64> = gathered.expect("rank 1 is the root").concat();
        assert_eq!(got, vec![0, 10, 20, 30]);
    } else {
        assert!(gathered.is_none());
    }
    token[0] + comm.rank() as u64
}

/// Records rank `src` sends to rank `dst` in the exchange entry.
fn chunk(src: usize, dst: usize) -> Vec<u64> {
    let count = (src + dst) % 3 + 1;
    (0..count)
        .map(|j| (src as u64) * 1_000_000 + (dst as u64) * 1_000 + j as u64)
        .collect()
}

/// What rank `me` in a world of `p` should end up holding, summed.
fn expected_exchange_sum(me: usize, p: usize) -> u64 {
    (0..p).flat_map(|src| chunk(src, me)).sum()
}

fn exchange_entry(comm: &SockComm, _seed: u64) -> u64 {
    let (me, p) = (comm.rank(), comm.size());
    let mut data = Vec::new();
    let mut send_counts = Vec::with_capacity(p);
    for dst in 0..p {
        let c = chunk(me, dst);
        send_counts.push(c.len());
        data.extend(c);
    }

    // Synchronous path: arrival is concatenated in source order.
    let (sync_recv, recv_counts) = comm.alltoallv(&data, &send_counts);
    let expected_flat: Vec<u64> = (0..p).flat_map(|src| chunk(src, me)).collect();
    assert_eq!(
        sync_recv, expected_flat,
        "rank {me}: sync exchange mismatch"
    );

    // Async self-first path: same bytes, chunk by chunk.
    let mut pending = comm.alltoallv_async_given_counts(&data, &send_counts, recv_counts);
    let mut sources_seen = vec![false; p];
    let mut first = true;
    while let Some((src, part)) = pending.wait_any(comm) {
        if first {
            assert_eq!(src, me, "self chunk must be delivered first");
            first = false;
        }
        assert!(!sources_seen[src], "duplicate chunk from {src}");
        sources_seen[src] = true;
        assert_eq!(part, chunk(src, me), "rank {me}: bad chunk from {src}");
    }
    assert!(
        sources_seen.iter().all(|&s| s),
        "missing chunks on rank {me}"
    );
    assert_eq!(pending.remaining(), 0);

    sync_recv.iter().sum()
}

fn split_entry(comm: &SockComm, _seed: u64) -> u64 {
    let (me, p) = (comm.rank(), comm.size());
    // Even/odd halves; within a half, keep world order.
    let color = (me % 2) as i64;
    let half = comm
        .split(Some(color), me as i64)
        .expect("everyone passed a color");
    assert_eq!(half.size(), p / 2);
    assert_eq!(half.rank(), me / 2);
    half.barrier();
    // The half's rank 0 is the lowest world rank of that parity = color.
    let root_world = half.bcast(0, (half.rank() == 0).then(|| vec![me as u64]));
    assert_eq!(root_world[0], color as u64);

    // A second split: rank p-1 sits out, the rest reverse their order via
    // negative keys. Exercises `None` colors and key-based reordering.
    let sub = comm.split((me != p - 1).then_some(7), -(me as i64));
    match sub {
        None => assert_eq!(me, p - 1),
        Some(sub) => {
            assert_eq!(sub.size(), p - 1);
            assert_eq!(sub.rank(), p - 2 - me, "negative keys reverse order");
            let top = sub.bcast(0, (sub.rank() == 0).then(|| vec![me as u64]));
            assert_eq!(top[0], (p - 2) as u64);
        }
    }
    comm.barrier();
    me as u64
}

fn die_entry(comm: &SockComm, _seed: u64) -> u64 {
    let (me, p) = (comm.rank(), comm.size());
    comm.barrier(); // mesh fully up before anyone dies
    if me == 2 {
        // Simulates a crash/kill: the process vanishes without goodbye,
        // mid-protocol; peers see raw EOF / connection resets.
        std::process::exit(42);
    }
    let data = vec![me as u64; p * 8];
    let counts = vec![8usize; p];
    let (recv, _) = comm.alltoallv(&data, &counts); // can never complete
    recv.len() as u64
}

// ---- parent-side tests ---------------------------------------------------

fn test_hello_uds() {
    let report = SocketWorld::new(P)
        .run::<u64, u64>("hello", &100)
        .expect("uds world");
    assert_eq!(report.results, vec![100, 101, 102, 103]);
    assert!(report.messages > 0, "collectives must move real messages");
    assert!(report.bytes > 0);
    assert_eq!(report.per_rank_wall.len(), P);
}

fn test_hello_tcp() {
    let report = SocketWorld::new(P)
        .transport(Transport::Tcp)
        .run::<u64, u64>("hello", &500)
        .expect("tcp world");
    assert_eq!(report.results, vec![500, 501, 502, 503]);
}

fn test_exchange_uds() {
    let report = SocketWorld::new(P)
        .run::<u64, u64>("exchange", &0)
        .expect("exchange world");
    let expected: Vec<u64> = (0..P).map(|r| expected_exchange_sum(r, P)).collect();
    assert_eq!(report.results, expected);
}

fn test_split_worlds() {
    let report = SocketWorld::new(P)
        .run::<u64, u64>("split", &0)
        .expect("split world");
    assert_eq!(report.results, vec![0, 1, 2, 3]);
}

fn test_peer_death_is_named_not_hung() {
    let start = Instant::now();
    let err = SocketWorld::new(P)
        .launch_timeout(Duration::from_secs(30))
        .run::<u64, u64>("die", &0)
        .expect_err("a dead rank must fail the world");
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_secs(20),
        "peer death took {elapsed:?} to surface — that is a hang, not detection"
    );
    match &err {
        SockError::PeerDeath { dead, detail } => {
            assert_eq!(
                *dead, 2,
                "diagnostic must name the rank that died: {detail}"
            );
        }
        other => panic!("expected PeerDeath, got: {other}"),
    }
    assert!(
        err.to_string().contains("rank 2"),
        "rendered diagnostic must name rank 2: {err}"
    );
}

fn main() {
    // Rank processes divert here and never return.
    child_rank("hello", hello_entry);
    child_rank("exchange", exchange_entry);
    child_rank("split", split_entry);
    child_rank("die", die_entry);

    let tests: &[(&str, fn())] = &[
        ("hello_world_uds", test_hello_uds),
        ("hello_world_tcp", test_hello_tcp),
        ("async_exchange_uds", test_exchange_uds),
        ("split_worlds", test_split_worlds),
        (
            "peer_death_is_named_not_hung",
            test_peer_death_is_named_not_hung,
        ),
    ];
    println!("\nrunning {} tests", tests.len());
    let mut failed = 0;
    for (name, test) in tests {
        match std::panic::catch_unwind(test) {
            Ok(()) => println!("test {name} ... ok"),
            Err(_) => {
                failed += 1;
                println!("test {name} ... FAILED");
            }
        }
    }
    if failed > 0 {
        println!("\ntest result: FAILED. {failed} failed");
        std::process::exit(1);
    }
    println!("\ntest result: ok. {} passed\n", tests.len());
}
