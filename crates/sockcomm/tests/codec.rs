//! Property tests for the sockcomm frame codec: arbitrary
//! `(kind, ctx, src, tag, payload)` frames round-trip bit-exactly through
//! both the pure buffer codec and the stream IO path, and malformed input
//! (truncation anywhere, oversized or undersized length prefixes) is
//! rejected rather than misparsed or over-allocated.

use proptest::prelude::*;
use sockcomm::frame::{
    decode_frame, encode_frame, read_frame, write_frame, Frame, FrameError, FrameKind,
    HEADER_BYTES, MAX_PAYLOAD,
};

fn kind_from(byte: u8) -> FrameKind {
    match byte % 8 {
        0 => FrameKind::Hello,
        1 => FrameKind::Addr,
        2 => FrameKind::Params,
        3 => FrameKind::Table,
        4 => FrameKind::Data,
        5 => FrameKind::Goodbye,
        6 => FrameKind::Result,
        _ => FrameKind::Abort,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn arbitrary_frame_round_trips(
        kind_byte in any::<u8>(),
        ctx in any::<u64>(),
        src in any::<u32>(),
        tag in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let frame = Frame { kind: kind_from(kind_byte), ctx, src, tag, payload };

        // Pure codec round-trip.
        let mut buf = Vec::new();
        encode_frame(&frame, &mut buf);
        prop_assert_eq!(buf.len(), 8 + HEADER_BYTES + frame.payload.len());
        let (decoded, consumed) = decode_frame(&buf).expect("well-formed frame must decode");
        prop_assert_eq!(consumed, buf.len());
        prop_assert_eq!(&decoded, &frame);

        // Stream round-trip (the path real connections take), plus clean
        // EOF at the frame boundary.
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).expect("vec write cannot fail");
        prop_assert_eq!(&wire, &buf);
        let mut cursor = std::io::Cursor::new(wire);
        let back = read_frame(&mut cursor).expect("read").expect("one frame present");
        prop_assert_eq!(&back, &frame);
        prop_assert!(read_frame(&mut cursor).expect("boundary EOF is clean").is_none());
    }

    #[test]
    fn truncation_anywhere_is_rejected(
        kind_byte in any::<u8>(),
        ctx in any::<u64>(),
        src in any::<u32>(),
        tag in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        cut_seed in any::<u64>(),
    ) {
        let frame = Frame { kind: kind_from(kind_byte), ctx, src, tag, payload };
        let mut buf = Vec::new();
        encode_frame(&frame, &mut buf);
        // Cut the buffer strictly short at an arbitrary point.
        let cut = (cut_seed as usize) % buf.len();
        let short = &buf[..cut];

        prop_assert_eq!(decode_frame(short).unwrap_err(), FrameError::Truncated);

        let mut cursor = std::io::Cursor::new(short.to_vec());
        match read_frame(&mut cursor) {
            // Zero bytes is a clean between-frames EOF by design.
            Ok(None) => prop_assert_eq!(cut, 0),
            Ok(Some(f)) => prop_assert!(false, "parsed a frame from a truncated buffer: {f:?}"),
            Err(e) => prop_assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof),
        }
    }

    #[test]
    fn bad_length_prefixes_are_rejected(raw_len in any::<u64>(), tail in any::<u8>()) {
        // Only lengths outside [HEADER_BYTES, HEADER_BYTES + MAX_PAYLOAD]
        // are invalid; fold the generated value onto the invalid set.
        let len = if (HEADER_BYTES as u64..=(HEADER_BYTES + MAX_PAYLOAD) as u64).contains(&raw_len) {
            if tail.is_multiple_of(2) { raw_len % HEADER_BYTES as u64 } else { u64::MAX - raw_len % 1024 }
        } else {
            raw_len
        };
        let mut buf = Vec::new();
        buf.extend_from_slice(&len.to_ne_bytes());
        buf.extend_from_slice(&[tail; 64]);

        prop_assert_eq!(decode_frame(&buf).unwrap_err(), FrameError::BadLength(len));

        // The IO path must reject before allocating `len` bytes.
        let mut cursor = std::io::Cursor::new(buf);
        let err = read_frame(&mut cursor).expect_err("bad length must error");
        prop_assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn unknown_kind_bytes_are_rejected(bad_kind in 9u8..=255u8, payload_len in 0usize..32) {
        let frame = Frame::control(FrameKind::Hello, 1, vec![0xAB; payload_len]);
        let mut buf = Vec::new();
        encode_frame(&frame, &mut buf);
        buf[8] = bad_kind;
        prop_assert_eq!(decode_frame(&buf).unwrap_err(), FrameError::BadKind(bad_kind));
    }
}
