//! Overload behavior: under a fault-injected memory ramp and a saturated
//! queue, the service degrades (spills, then sheds) and applies
//! backpressure — and every accepted job still resolves explicitly.

use service::{JobOutcome, JobSpec, PressureConfig, ServiceConfig, SortService, TrySubmitError};

#[test]
fn injected_pressure_ramp_degrades_gracefully_without_silent_drops() {
    let spill_dir = std::env::temp_dir().join("sds-service-overload-test");
    let mut cfg = ServiceConfig::new(2);
    cfg.queue_capacity = 4;
    cfg.spill_dir = spill_dir.clone();
    // Fault injection: synthetic pressure climbs 0.12 per completed job
    // against real byte pressure made negligible by a huge budget. The
    // service must walk in-memory → spill (≥ 0.75) → shed (≥ 0.95).
    cfg.pressure = PressureConfig {
        soft_budget_bytes: 1 << 40,
        injected_ramp_per_job: 0.12,
        ..PressureConfig::default()
    };
    let svc = SortService::start(cfg);

    let tickets: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|c| {
                let client = svc.client();
                scope.spawn(move || {
                    (0..3u64)
                        .map(|i| {
                            // Blocking submit: a full queue parks this
                            // thread instead of dropping the job.
                            client
                                .submit(JobSpec::new("zipf:0.8", 4_000, c * 10 + i))
                                .expect("service accepting")
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("submitter thread"))
            .collect()
    });
    assert_eq!(tickets.len(), 12);

    let (mut completed, mut spilled, mut shed, mut failed) = (0u64, 0u64, 0u64, 0u64);
    for t in tickets {
        match t.wait() {
            JobOutcome::Sorted { report, .. } => {
                completed += 1;
                if report.spilled {
                    spilled += 1;
                    assert!(report.spill_records > 0, "spilling moved records");
                }
            }
            JobOutcome::Shed { pressure, .. } => {
                shed += 1;
                assert!(pressure >= 0.95, "shed below the threshold: {pressure}");
            }
            JobOutcome::Failed { id, error } => {
                failed += 1;
                eprintln!("job {id} failed: {error}");
            }
        }
    }
    // Ramp arithmetic: completions 0..=6 run in memory (injected < 0.75),
    // 7 and on spill until 0.96 is reached at the 8th completion, after
    // which everything sheds. Every ticket resolved above — nothing was
    // silently dropped.
    assert_eq!(failed, 0);
    assert_eq!(completed, 8, "8 jobs complete before the ramp sheds");
    assert_eq!(shed, 4, "the last 4 jobs shed");
    assert!(spilled >= 1, "the ramp's middle regime must spill");

    let report = svc.shutdown();
    assert!(report.counters.balanced(), "{:?}", report.counters);
    assert_eq!(report.counters.submitted, 12);
    assert_eq!(report.counters.spilled, spilled);
    let _ = std::fs::remove_dir_all(spill_dir);
}

#[test]
fn saturated_queue_rejects_try_submit_and_resolves_everything() {
    let mut cfg = ServiceConfig::new(2);
    cfg.queue_capacity = 2;
    let svc = SortService::start(cfg);
    let client = svc.client();

    // Burst far past capacity in a tight loop. The dispatcher can absorb
    // at most one job into execution, the queue holds two more, so at
    // least three of these must bounce with QueueFull.
    let mut accepted = Vec::new();
    let mut bounced = 0u64;
    for i in 0..6u64 {
        match client.try_submit(JobSpec::new("uniform", 50_000, i)) {
            Ok(t) => accepted.push(t),
            Err(TrySubmitError::QueueFull) => bounced += 1,
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    assert!(
        bounced >= 3,
        "backpressure must engage: only {bounced} bounced"
    );
    assert!(!accepted.is_empty());

    let n = accepted.len() as u64;
    for t in accepted {
        match t.wait() {
            JobOutcome::Sorted { .. } => {}
            other => panic!("accepted job must sort: {other:?}"),
        }
    }
    let report = svc.shutdown();
    assert_eq!(report.counters.completed, n);
    assert_eq!(report.counters.queue_full, bounced);
    assert!(report.counters.balanced());
    assert!(report.jobs_per_sec > 0.0);
    assert!(report.latency_p99_s >= report.latency_p50_s);
}
