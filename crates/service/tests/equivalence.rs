//! Service jobs are bit-identical to standalone threads-backend sorts.
//!
//! N jobs submitted concurrently from several client handles must produce
//! exactly the per-rank output a sequence of one-shot `ThreadWorld` runs
//! produces for the same `(workload, size, seed)` — the service's rank
//! pool, split contexts, and arena recycling must be invisible in the
//! output.

use sdssort::{sds_sort, SdsConfig};
use service::{JobOutcome, JobSpec, ServiceConfig, SortService};
use shmem::ThreadWorld;

const RANKS: usize = 4;

fn reference_run(spec: &JobSpec) -> Vec<Vec<u64>> {
    let spec = spec.clone();
    let report = ThreadWorld::new(RANKS).run(move |comm| {
        use comm::Communicator;
        let keys = workloads::keys_by_name(
            &spec.workload,
            spec.records_per_rank,
            spec.seed,
            comm.rank(),
        )
        .expect("known workload");
        sds_sort(comm, keys, &SdsConfig::default())
            .expect("no memory budget on the threads backend")
            .data
    });
    report.results
}

#[test]
fn concurrent_service_jobs_match_sequential_oneshot_runs() {
    let specs: Vec<JobSpec> = vec![
        JobSpec::new("uniform", 3_000, 11).with_output(),
        JobSpec::new("zipf:0.8", 2_500, 12).with_output(),
        JobSpec::new("adversarial", 2_000, 13).with_output(),
        JobSpec::new("ptf-like", 1_500, 14).with_output(),
        JobSpec::new("zipf:0.5", 3_500, 15).with_output(),
        JobSpec::new("uniform", 1_000, 16).with_output(),
        JobSpec::new("zipf:0.9", 2_000, 17).with_output(),
        JobSpec::new("uniform", 2_000, 11).with_output(),
    ];

    let svc = SortService::start(ServiceConfig::new(RANKS));
    // Two concurrent client handles interleave their submissions; results
    // come back per ticket, so interleaving cannot mix up jobs.
    let tickets: Vec<_> = std::thread::scope(|scope| {
        let halves: Vec<_> = specs
            .chunks(4)
            .map(|chunk| {
                let client = svc.client();
                let chunk = chunk.to_vec();
                scope.spawn(move || {
                    chunk
                        .into_iter()
                        .map(|spec| client.submit(spec).expect("service accepting"))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        halves
            .into_iter()
            .flat_map(|h| h.join().expect("submitter thread"))
            .collect()
    });

    let mut by_id: Vec<(u64, Vec<Vec<u64>>)> = tickets
        .into_iter()
        .map(|t| {
            let id = t.id();
            match t.wait() {
                JobOutcome::Sorted { output, report } => {
                    assert!(report.sort_wall_s >= 0.0);
                    (id, output.expect("with_output jobs return data"))
                }
                other => panic!("job {id} did not sort: {other:?}"),
            }
        })
        .collect();
    by_id.sort_by_key(|&(id, _)| id);

    // Submission interleaving means job ids don't map to `specs` order —
    // but each ticket's id was assigned at package time per client, and
    // within one client the order is the chunk order. Re-derive the spec
    // for each id by matching total record counts + verifying against the
    // reference of every spec. Simpler and airtight: compare as multisets
    // keyed by the reference output itself.
    let mut expected: Vec<Vec<Vec<u64>>> = specs.iter().map(reference_run).collect();
    for (id, got) in by_id {
        let pos = expected
            .iter()
            .position(|e| *e == got)
            .unwrap_or_else(|| panic!("job {id} output matches no sequential reference run"));
        expected.remove(pos);
    }
    assert!(
        expected.is_empty(),
        "every reference run matched exactly once"
    );

    let report = svc.shutdown();
    assert_eq!(report.counters.completed, specs.len() as u64);
    assert!(report.counters.balanced());
}

#[test]
fn steady_state_jobs_recycle_arena_buffers() {
    let mut cfg = ServiceConfig::new(2);
    cfg.arena_buffers_per_rank = 2;
    let svc = SortService::start(cfg);
    let client = svc.client();
    for i in 0..6u64 {
        // No output requested: sorted buffers return to the arena.
        let t = client
            .submit(JobSpec::new("uniform", 2_000, 100 + i))
            .expect("accepting");
        match t.wait() {
            JobOutcome::Sorted { .. } => {}
            other => panic!("steady-state job failed: {other:?}"),
        }
    }
    let c = svc.counters();
    assert!(
        c.arena_hits >= 8,
        "steady state must serve takes from the pool (hits {}, misses {})",
        c.arena_hits,
        c.arena_misses
    );
    // Warm-up misses only: one per rank-buffer actually needed.
    assert!(
        c.arena_misses <= 4,
        "misses {} exceed warm-up",
        c.arena_misses
    );
    svc.shutdown();
}
