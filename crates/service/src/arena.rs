//! Per-rank recycled key buffers.
//!
//! Each job needs one input buffer per rank (filled by the workload
//! generator) and produces one output buffer per rank (built by the
//! sort's exchange). The input buffer is consumed by the sort, but the
//! output buffer comes back — so the arena recycles *outputs into next
//! job's inputs*: in steady state, buffers circulate through the pool and
//! the allocator is only hit while the pool warms up or a job outgrows
//! every pooled buffer's capacity.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A pool of reusable `Vec<u64>` key buffers, segregated by rank so a
/// rank's buffers stay NUMA/cache-friendly to that rank's thread.
pub struct Arena {
    pools: Vec<Mutex<Vec<Vec<u64>>>>,
    max_per_rank: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Arena {
    /// An empty arena for `ranks` ranks keeping at most `max_per_rank`
    /// buffers pooled per rank.
    pub fn new(ranks: usize, max_per_rank: usize) -> Self {
        Self {
            pools: (0..ranks).map(|_| Mutex::new(Vec::new())).collect(),
            max_per_rank,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Take a cleared buffer for `rank` — pooled if available (hit), fresh
    /// otherwise (miss).
    pub fn take(&self, rank: usize) -> Vec<u64> {
        let mut pool = self.pools[rank].lock().expect("arena pool mutex poisoned");
        if let Some(buf) = pool.pop() {
            self.hits.fetch_add(1, Ordering::SeqCst);
            buf
        } else {
            self.misses.fetch_add(1, Ordering::SeqCst);
            Vec::new()
        }
    }

    /// Return a buffer to `rank`'s pool (cleared; dropped if the pool is
    /// full or the buffer never allocated).
    pub fn put(&self, rank: usize, mut buf: Vec<u64>) {
        buf.clear();
        if buf.capacity() == 0 {
            return;
        }
        let mut pool = self.pools[rank].lock().expect("arena pool mutex poisoned");
        if pool.len() < self.max_per_rank {
            pool.push(buf);
        }
    }

    /// Takes served from the pool.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::SeqCst)
    }

    /// Takes that had to allocate fresh.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::SeqCst)
    }

    /// Buffers currently pooled across all ranks.
    pub fn pooled(&self) -> usize {
        self.pools
            .iter()
            .map(|p| p.lock().expect("arena pool mutex poisoned").len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_circulate_per_rank() {
        let a = Arena::new(2, 4);
        let mut b = a.take(0);
        assert_eq!(a.misses(), 1);
        b.extend(0..100u64);
        let cap = b.capacity();
        a.put(0, b);
        assert_eq!(a.pooled(), 1);
        // Other rank's pool is separate.
        let other = a.take(1);
        assert_eq!(a.misses(), 2);
        assert_eq!(other.capacity(), 0);
        // Same rank gets the recycled capacity back, cleared.
        let again = a.take(0);
        assert_eq!(a.hits(), 1);
        assert!(again.is_empty());
        assert_eq!(again.capacity(), cap);
    }

    #[test]
    fn pool_is_bounded_and_ignores_unallocated() {
        let a = Arena::new(1, 2);
        a.put(0, Vec::new()); // capacity 0: not pooled
        assert_eq!(a.pooled(), 0);
        for _ in 0..5 {
            a.put(0, Vec::with_capacity(8));
        }
        assert_eq!(a.pooled(), 2, "pool capped at max_per_rank");
    }
}
