//! # service — sort-as-a-service on the threads backend
//!
//! Everything else in this workspace runs one sort per world: build
//! threads, sort, join, exit. This crate turns the `shmem` backend into a
//! long-lived **[`SortService`]** that an application embeds and feeds a
//! stream of independent sort jobs:
//!
//! * **Persistent rank pool** — the rank threads are created once
//!   ([`shmem::ResidentWorld`]) and parked between jobs; steady-state jobs
//!   never spawn a thread.
//! * **Bounded submission queue** — built on the same `(ctx, src, tag)`-
//!   matched bounded [`shmem::mailbox::Mailbox`] the backend uses for rank
//!   traffic. A full queue blocks [`ServiceClient::submit`] (real sender
//!   backpressure) or fails [`ServiceClient::try_submit`] fast.
//! * **Arena buffer reuse** — input keys are generated into recycled
//!   per-rank buffers and sorted output buffers are returned to the
//!   [`Arena`], so the steady state allocates from the pool instead of the
//!   OS.
//! * **Overload-graceful degradation** — a [`PressureGauge`] (with a
//!   fault-injectable synthetic pressure ramp) classifies each job:
//!   in-memory, *spill* (the job runs through
//!   [`sdssort::sds_sort_resilient`]'s disk-spilling exchange), or *shed*
//!   (the job is refused with an explicit [`JobOutcome::Shed`] — never a
//!   silent drop).
//! * **Per-job telemetry** — every completed job reports queue wait and
//!   the sort phase breakdown ([`JobReport`]); the service aggregates
//!   throughput and p50/p99 latency into a [`ServiceReport`].
//!
//! ## Quick start
//!
//! ```
//! use service::{JobOutcome, JobSpec, ServiceConfig, SortService};
//!
//! let svc = SortService::start(ServiceConfig::new(4));
//! let client = svc.client();
//! let ticket = client
//!     .submit(JobSpec::new("zipf:0.8", 5_000, 42))
//!     .expect("service accepting jobs");
//! match ticket.wait() {
//!     JobOutcome::Sorted { report, .. } => assert_eq!(report.records, 20_000),
//!     other => panic!("unexpected outcome: {other:?}"),
//! }
//! let report = svc.shutdown();
//! assert_eq!(report.counters.completed, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod config;
pub mod job;
pub mod loadgen;
pub mod pressure;
pub mod report;
mod service;

pub use arena::Arena;
pub use config::ServiceConfig;
pub use job::{JobOutcome, JobReport, JobSpec, JobTicket, SubmitError, TrySubmitError};
pub use loadgen::LoadGen;
pub use pressure::{Admission, PressureConfig, PressureGauge};
pub use report::{percentile, ServiceCounters, ServiceReport};
pub use service::{ServiceClient, SortService};
