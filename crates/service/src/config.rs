//! Service configuration.

use crate::pressure::PressureConfig;
use sdssort::SdsConfig;
use std::path::PathBuf;

/// Configuration for one [`crate::SortService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Ranks in the resident pool (one persistent OS thread each).
    pub ranks: usize,
    /// Ranks per node, as seen by the sort's node-merge stage.
    pub cores_per_node: usize,
    /// Submission queue capacity in jobs. A full queue blocks
    /// [`crate::ServiceClient::submit`] — this is the client-facing
    /// backpressure bound.
    pub queue_capacity: usize,
    /// Sort configuration applied to every job.
    pub sort: SdsConfig,
    /// Directory for spilled run files when a job degrades to the
    /// resilient disk-spilling exchange (a per-job subdirectory is
    /// created).
    pub spill_dir: PathBuf,
    /// Buffers the arena keeps pooled per rank; surplus returns to the
    /// allocator.
    pub arena_buffers_per_rank: usize,
    /// Admission-control thresholds and fault injection.
    pub pressure: PressureConfig,
}

impl ServiceConfig {
    /// Defaults for a pool of `ranks` ranks: 16-job queue, default sort
    /// thresholds, spill under `$TMPDIR`, 4 pooled buffers per rank.
    pub fn new(ranks: usize) -> Self {
        Self {
            ranks,
            cores_per_node: 1,
            queue_capacity: 16,
            sort: SdsConfig::default(),
            spill_dir: std::env::temp_dir().join("sds-service-spill"),
            arena_buffers_per_rank: 4,
            pressure: PressureConfig::default(),
        }
    }
}
