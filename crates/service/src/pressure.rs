//! Admission control: memory-pressure accounting with fault injection.
//!
//! The threads backend has no simulated memory budget —
//! `Communicator::memory_pressure_with` reports zero there, because host
//! RAM is the budget. A *service*, however, must not accept unbounded work
//! just because the OS has not OOM-killed it yet. The [`PressureGauge`]
//! tracks a service-level pressure estimate against a soft byte budget and
//! classifies each job at admission:
//!
//! * below `spill_at` — run fully in memory;
//! * in `[spill_at, shed_at)` — run, but through the resilient
//!   disk-spilling exchange ([`sdssort::sds_sort_resilient`]);
//! * at or above `shed_at` — refuse the job with an explicit
//!   [`crate::JobOutcome::Shed`].
//!
//! For overload testing, a synthetic pressure ramp can be injected:
//! `injected_start + injected_ramp_per_job · completed_jobs` is added to
//! the measured fraction, deterministically driving the service through
//! in-memory → spill → shed as jobs complete.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Thresholds and fault injection for the [`PressureGauge`].
#[derive(Debug, Clone, Copy)]
pub struct PressureConfig {
    /// Soft memory budget in bytes the service aims to stay under.
    pub soft_budget_bytes: usize,
    /// Pressure at or above which admitted jobs run through the
    /// disk-spilling resilient exchange.
    pub spill_at: f64,
    /// Pressure at or above which jobs are shed (refused explicitly).
    pub shed_at: f64,
    /// Injected synthetic pressure present from the first job.
    pub injected_start: f64,
    /// Injected synthetic pressure added per *completed* job — a
    /// deterministic fault-injection ramp for overload tests. Zero (the
    /// default) disables injection.
    pub injected_ramp_per_job: f64,
}

impl Default for PressureConfig {
    fn default() -> Self {
        Self {
            soft_budget_bytes: 256 << 20,
            spill_at: 0.75,
            shed_at: 0.95,
            injected_start: 0.0,
            injected_ramp_per_job: 0.0,
        }
    }
}

/// The admission decision for one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Run fully in memory.
    InMemory,
    /// Run through the resilient disk-spilling exchange.
    Spill,
    /// Refuse the job.
    Shed,
}

/// Service-level memory-pressure accounting.
pub struct PressureGauge {
    cfg: PressureConfig,
    inflight_bytes: AtomicUsize,
    completed_jobs: AtomicU64,
}

impl PressureGauge {
    /// A gauge with the given thresholds, starting idle.
    pub fn new(cfg: PressureConfig) -> Self {
        Self {
            cfg,
            inflight_bytes: AtomicUsize::new(0),
            completed_jobs: AtomicU64::new(0),
        }
    }

    /// Current pressure if `extra_bytes` more were admitted: the in-flight
    /// fraction of the soft budget plus any injected synthetic ramp.
    pub fn pressure_with(&self, extra_bytes: usize) -> f64 {
        let inflight = self.inflight_bytes.load(Ordering::SeqCst);
        let injected = self.cfg.injected_start
            + self.cfg.injected_ramp_per_job * self.completed_jobs.load(Ordering::SeqCst) as f64;
        (inflight + extra_bytes) as f64 / self.cfg.soft_budget_bytes.max(1) as f64 + injected
    }

    /// Decide admission for a job of `bytes` total payload. Accepted jobs
    /// (in-memory or spill) are added to the in-flight account; the caller
    /// must [`Self::release`] them when done. Returns the decision and the
    /// pressure it was based on.
    pub fn admit(&self, bytes: usize) -> (Admission, f64) {
        let p = self.pressure_with(bytes);
        if p >= self.cfg.shed_at {
            return (Admission::Shed, p);
        }
        self.inflight_bytes.fetch_add(bytes, Ordering::SeqCst);
        if p >= self.cfg.spill_at {
            (Admission::Spill, p)
        } else {
            (Admission::InMemory, p)
        }
    }

    /// Account a previously admitted job as finished (also advances the
    /// injected fault ramp).
    pub fn release(&self, bytes: usize) {
        self.inflight_bytes.fetch_sub(bytes, Ordering::SeqCst);
        self.completed_jobs.fetch_add(1, Ordering::SeqCst);
    }

    /// Jobs released so far.
    pub fn completed(&self) -> u64 {
        self.completed_jobs.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gauge(budget: usize, ramp: f64) -> PressureGauge {
        PressureGauge::new(PressureConfig {
            soft_budget_bytes: budget,
            injected_ramp_per_job: ramp,
            ..PressureConfig::default()
        })
    }

    #[test]
    fn thresholds_classify_by_size() {
        let g = gauge(1000, 0.0);
        assert_eq!(g.admit(100).0, Admission::InMemory);
        // 100 in flight + 700 = 0.8 ≥ spill_at
        assert_eq!(g.admit(700).0, Admission::Spill);
        // 800 in flight + 200 = 1.0 ≥ shed_at
        assert_eq!(g.admit(200).0, Admission::Shed);
        g.release(700);
        assert_eq!(g.admit(200).0, Admission::InMemory);
    }

    #[test]
    fn injected_ramp_walks_through_the_regimes() {
        let g = gauge(1 << 30, 0.2); // real bytes negligible; ramp dominates
        let mut seen = Vec::new();
        for _ in 0..6 {
            let (a, _) = g.admit(8);
            if a != Admission::Shed {
                g.release(8);
            }
            seen.push(a);
        }
        assert_eq!(
            seen,
            vec![
                Admission::InMemory, // injected 0.0
                Admission::InMemory, // 0.2
                Admission::InMemory, // 0.4
                Admission::InMemory, // 0.6
                Admission::Spill,    // 0.8
                Admission::Shed,     // 1.0 — and shed forever after
            ]
        );
        assert_eq!(g.completed(), 5, "shed jobs do not advance the ramp");
    }
}
