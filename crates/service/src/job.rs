//! Job specifications, tickets, and per-job reports.

use std::sync::mpsc;

/// One sort job: which keys to generate and sort, sized per rank.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Workload name understood by [`workloads::keys_by_name`]:
    /// `uniform`, `zipf:<alpha>`, `ptf-like`, or `adversarial`.
    pub workload: String,
    /// Records generated (and sorted) per rank.
    pub records_per_rank: usize,
    /// Generator seed; together with the workload name this makes the job
    /// bit-reproducible.
    pub seed: u64,
    /// Return each rank's sorted slice in the outcome. Off by default —
    /// benchmarks want throughput, not copies — and when off, output
    /// buffers are recycled into the service arena.
    pub return_output: bool,
}

impl JobSpec {
    /// A job of `records_per_rank` records per rank from `workload`.
    pub fn new(workload: impl Into<String>, records_per_rank: usize, seed: u64) -> Self {
        Self {
            workload: workload.into(),
            records_per_rank,
            seed,
            return_output: false,
        }
    }

    /// Request the sorted output back (disables output-buffer recycling
    /// for this job).
    pub fn with_output(mut self) -> Self {
        self.return_output = true;
        self
    }
}

/// Telemetry for one completed job.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Service-assigned job id (submission order).
    pub id: u64,
    /// Workload name the job sorted.
    pub workload: String,
    /// Total records sorted across all ranks.
    pub records: u64,
    /// Seconds the job waited in the submission queue.
    pub queue_wait_s: f64,
    /// Wall seconds the gang spent sorting (generation included).
    pub sort_wall_s: f64,
    /// Per-phase maxima across ranks: pivot selection.
    pub pivot_s: f64,
    /// Per-phase maxima across ranks: all-to-all exchange.
    pub exchange_s: f64,
    /// Per-phase maxima across ranks: final local ordering.
    pub local_order_s: f64,
    /// Whether any rank degraded to the disk-spilling exchange.
    pub spilled: bool,
    /// Records routed through the spill path, summed over ranks.
    pub spill_records: u64,
    /// Gauge pressure at admission time.
    pub admit_pressure: f64,
}

impl JobReport {
    /// End-to-end latency the client observed: queue wait plus sort wall
    /// time.
    pub fn latency_s(&self) -> f64 {
        self.queue_wait_s + self.sort_wall_s
    }
}

/// How a job ended. Every accepted ticket resolves to exactly one of
/// these — the service never drops a job silently.
#[derive(Debug)]
pub enum JobOutcome {
    /// The job sorted successfully.
    Sorted {
        /// Timing and degradation telemetry.
        report: JobReport,
        /// Per-rank sorted slices, present iff
        /// [`JobSpec::return_output`] was set.
        output: Option<Vec<Vec<u64>>>,
    },
    /// Admission control refused the job under memory pressure.
    Shed {
        /// Service-assigned job id.
        id: u64,
        /// Gauge pressure that triggered the shed.
        pressure: f64,
        /// Seconds the job waited in the queue before being shed.
        queue_wait_s: f64,
    },
    /// The job failed (bad workload name, sort error, or a poisoned
    /// world).
    Failed {
        /// Service-assigned job id.
        id: u64,
        /// What went wrong.
        error: String,
    },
}

/// Handle to one submitted job; redeem with [`JobTicket::wait`].
pub struct JobTicket {
    pub(crate) id: u64,
    pub(crate) rx: mpsc::Receiver<JobOutcome>,
}

impl JobTicket {
    /// The service-assigned job id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Block until the job resolves. If the service is torn down without
    /// resolving the job (it never is in normal shutdown, which drains the
    /// queue), this reports an explicit failure rather than hanging.
    pub fn wait(self) -> JobOutcome {
        match self.rx.recv() {
            Ok(outcome) => outcome,
            Err(_) => JobOutcome::Failed {
                id: self.id,
                error: "service terminated before resolving the job".to_owned(),
            },
        }
    }
}

/// Why a blocking submit failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The service is shutting down and no longer accepts jobs.
    Shutdown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sort service is shutting down")
    }
}

impl std::error::Error for SubmitError {}

/// Why a non-blocking submit failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySubmitError {
    /// The bounded submission queue is full (backpressure).
    QueueFull,
    /// The service is shutting down and no longer accepts jobs.
    Shutdown,
}

impl std::fmt::Display for TrySubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrySubmitError::QueueFull => write!(f, "submission queue is full"),
            TrySubmitError::Shutdown => write!(f, "sort service is shutting down"),
        }
    }
}

impl std::error::Error for TrySubmitError {}
