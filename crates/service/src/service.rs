//! The resident [`SortService`]: dispatcher loop, client handles, and the
//! per-rank gang job.
//!
//! ## Architecture
//!
//! ```text
//!  ServiceClient ──submit──▶ Mailbox (bounded; full ⇒ sender blocks)
//!  ServiceClient ──submit──▶    │   (ctx QUEUE_CTX, src client, tag JOB)
//!       ...                     ▼
//!                      dispatcher thread ──gang──▶ ResidentWorld
//!                        │  admission:                (persistent rank
//!                        │  in-memory / spill / shed   threads, parked
//!                        ▼                             between jobs)
//!                  JobOutcome over the ticket channel
//! ```
//!
//! The dispatcher executes jobs strictly one gang at a time (the ranks
//! share one communicator; overlapping gangs would interleave
//! collectives), so concurrency for clients comes from the queue: many
//! handles submit concurrently, the bounded mailbox absorbs bursts, and a
//! full mailbox blocks submitters — the same backpressure discipline the
//! backend applies to rank traffic.
//!
//! Every accepted job resolves its ticket exactly once. Shutdown first
//! stops admission (pushes fail), then drains the queue (the mailbox
//! returns already-queued envelopes even with the stop flag set), so
//! nothing accepted is ever silently dropped.

use crate::arena::Arena;
use crate::config::ServiceConfig;
use crate::job::{JobOutcome, JobReport, JobSpec, JobTicket, SubmitError, TrySubmitError};
use crate::pressure::{Admission, PressureGauge};
use crate::report::{percentile, ServiceCounters, ServiceReport};
use comm::Communicator;
use sdssort::stats::phase_maxima;
use sdssort::{sds_sort, sds_sort_resilient, ResilienceConfig, SdsConfig, SortStats};
use shmem::mailbox::{Envelope, Mailbox, SrcSel};
use shmem::{ResidentWorld, ThreadComm, ThreadWorld};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Mailbox context id of the submission queue.
const QUEUE_CTX: u64 = 0;
/// Tag carried by job-submission envelopes.
const JOB_TAG: u64 = 1;

/// What travels through the submission mailbox.
struct Queued {
    id: u64,
    spec: JobSpec,
    /// Submission time in seconds since the service epoch.
    submitted_s: f64,
    reply: mpsc::Sender<JobOutcome>,
}

struct Metrics {
    counters: ServiceCounters,
    queue_waits: Vec<f64>,
    latencies: Vec<f64>,
}

struct Shared {
    queue: Mailbox,
    /// Doubles as the mailbox abort flag: once set, pushes fail and a
    /// draining take returns `None` when the queue is empty.
    stopping: AtomicBool,
    gauge: PressureGauge,
    arena: Arc<Arena>,
    epoch: Instant,
    next_job: AtomicU64,
    next_client: AtomicUsize,
    metrics: Mutex<Metrics>,
}

impl Shared {
    fn now_s(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }
}

/// A long-lived sort service over a persistent rank pool. See the crate
/// docs for the full model and a quick-start example.
pub struct SortService {
    shared: Arc<Shared>,
    dispatcher: Option<JoinHandle<()>>,
}

/// A handle for submitting jobs; obtain one per client thread via
/// [`SortService::client`].
pub struct ServiceClient {
    shared: Arc<Shared>,
    client_id: usize,
}

impl SortService {
    /// Spawn the resident rank pool and the dispatcher, ready for jobs.
    pub fn start(cfg: ServiceConfig) -> Self {
        let shared = Arc::new(Shared {
            queue: Mailbox::new(cfg.queue_capacity),
            stopping: AtomicBool::new(false),
            gauge: PressureGauge::new(cfg.pressure),
            arena: Arc::new(Arena::new(cfg.ranks, cfg.arena_buffers_per_rank)),
            epoch: Instant::now(),
            next_job: AtomicU64::new(0),
            next_client: AtomicUsize::new(0),
            metrics: Mutex::new(Metrics {
                counters: ServiceCounters::default(),
                queue_waits: Vec::new(),
                latencies: Vec::new(),
            }),
        });
        let shared2 = Arc::clone(&shared);
        let dispatcher = std::thread::Builder::new()
            .name("sortsvc-dispatcher".to_owned())
            .spawn(move || {
                // The resident world lives on the dispatcher thread: gangs
                // are strictly sequential by construction.
                let mut world = ThreadWorld::new(cfg.ranks)
                    .cores_per_node(cfg.cores_per_node)
                    .resident();
                while let Some(env) =
                    shared2
                        .queue
                        .take(QUEUE_CTX, SrcSel::Any, JOB_TAG, &shared2.stopping)
                {
                    let queued = env
                        .data
                        .downcast::<Queued>()
                        .expect("submission envelopes carry Queued payloads");
                    run_one(&shared2, &cfg, &mut world, *queued);
                }
            })
            .expect("spawn sortsvc dispatcher thread");
        Self {
            shared,
            dispatcher: Some(dispatcher),
        }
    }

    /// A new client handle. Handles are independent (distinct mailbox
    /// sources) and may live on different threads.
    pub fn client(&self) -> ServiceClient {
        ServiceClient {
            shared: Arc::clone(&self.shared),
            client_id: self.shared.next_client.fetch_add(1, Ordering::SeqCst),
        }
    }

    /// Snapshot of the service counters (arena stats included).
    pub fn counters(&self) -> ServiceCounters {
        let mut c = self
            .shared
            .metrics
            .lock()
            .expect("service metrics mutex poisoned")
            .counters;
        c.arena_hits = self.shared.arena.hits();
        c.arena_misses = self.shared.arena.misses();
        c
    }

    /// Stop admission, drain the queue, park the world, and aggregate the
    /// lifetime report. Every job accepted before shutdown still resolves.
    pub fn shutdown(mut self) -> ServiceReport {
        self.finish()
    }

    fn finish(&mut self) -> ServiceReport {
        self.shared.stopping.store(true, Ordering::SeqCst);
        self.shared.queue.interrupt();
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
        let wall_s = self.shared.now_s();
        let mut m = self
            .shared
            .metrics
            .lock()
            .expect("service metrics mutex poisoned");
        let mut counters = m.counters;
        counters.arena_hits = self.shared.arena.hits();
        counters.arena_misses = self.shared.arena.misses();
        ServiceReport {
            counters,
            wall_s,
            jobs_per_sec: counters.completed as f64 / wall_s.max(1e-9),
            queue_wait_p50_s: percentile(&mut m.queue_waits, 50.0),
            queue_wait_p99_s: percentile(&mut m.queue_waits, 99.0),
            latency_p50_s: percentile(&mut m.latencies, 50.0),
            latency_p99_s: percentile(&mut m.latencies, 99.0),
        }
    }
}

impl Drop for SortService {
    fn drop(&mut self) {
        if self.dispatcher.is_some() {
            let _ = self.finish();
        }
    }
}

impl ServiceClient {
    /// This handle's client id (its mailbox source).
    pub fn id(&self) -> usize {
        self.client_id
    }

    fn package(&self, spec: JobSpec) -> (Envelope, JobTicket) {
        let id = self.shared.next_job.fetch_add(1, Ordering::SeqCst);
        let (tx, rx) = mpsc::channel();
        let bytes = spec.records_per_rank * std::mem::size_of::<u64>();
        let env = Envelope {
            ctx: QUEUE_CTX,
            src: self.client_id,
            tag: JOB_TAG,
            data: Box::new(Queued {
                id,
                spec,
                submitted_s: self.shared.now_s(),
                reply: tx,
            }),
            bytes,
        };
        (env, JobTicket { id, rx })
    }

    fn note_submitted(&self) {
        self.shared
            .metrics
            .lock()
            .expect("service metrics mutex poisoned")
            .counters
            .submitted += 1;
    }

    /// Submit a job, blocking while the queue is full (backpressure).
    pub fn submit(&self, spec: JobSpec) -> Result<JobTicket, SubmitError> {
        let (env, ticket) = self.package(spec);
        if self.shared.queue.push(env, &self.shared.stopping) {
            self.note_submitted();
            Ok(ticket)
        } else {
            Err(SubmitError::Shutdown)
        }
    }

    /// Submit without blocking: a full queue fails fast with
    /// [`TrySubmitError::QueueFull`] instead of waiting.
    pub fn try_submit(&self, spec: JobSpec) -> Result<JobTicket, TrySubmitError> {
        if self.shared.stopping.load(Ordering::SeqCst) {
            return Err(TrySubmitError::Shutdown);
        }
        let (env, ticket) = self.package(spec);
        match self.shared.queue.try_push(env) {
            Ok(()) => {
                self.note_submitted();
                Ok(ticket)
            }
            Err(_env) => {
                self.shared
                    .metrics
                    .lock()
                    .expect("service metrics mutex poisoned")
                    .counters
                    .queue_full += 1;
                Err(TrySubmitError::QueueFull)
            }
        }
    }
}

/// Execute one queued job end to end on the dispatcher thread.
fn run_one(shared: &Arc<Shared>, cfg: &ServiceConfig, world: &mut ResidentWorld, q: Queued) {
    let Queued {
        id,
        spec,
        submitted_s,
        reply,
    } = q;
    let queue_wait_s = shared.now_s() - submitted_s;
    let records = spec.records_per_rank as u64 * cfg.ranks as u64;
    let bytes = records as usize * std::mem::size_of::<u64>();

    let (admission, admit_pressure) = shared.gauge.admit(bytes);
    if admission == Admission::Shed {
        let mut m = shared
            .metrics
            .lock()
            .expect("service metrics mutex poisoned");
        m.counters.shed += 1;
        m.queue_waits.push(queue_wait_s);
        drop(m);
        let _ = reply.send(JobOutcome::Shed {
            id,
            pressure: admit_pressure,
            queue_wait_s,
        });
        return;
    }

    let spill = admission == Admission::Spill;
    let spec = Arc::new(spec);
    let gang_spec = Arc::clone(&spec);
    let arena = Arc::clone(&shared.arena);
    let sort_cfg = cfg.sort;
    let spill_dir = cfg.spill_dir.join(format!("job{id}"));
    let t0 = shared.now_s();
    let gang =
        world.run(move |comm| rank_job(comm, &gang_spec, &arena, &sort_cfg, spill, &spill_dir));
    let sort_wall_s = shared.now_s() - t0;
    shared.gauge.release(bytes);

    let outcome = match gang {
        Err(e) => JobOutcome::Failed {
            id,
            error: e.message,
        },
        Ok(per_rank) => assemble(
            id,
            &spec,
            per_rank,
            records,
            queue_wait_s,
            sort_wall_s,
            admit_pressure,
        ),
    };
    let mut m = shared
        .metrics
        .lock()
        .expect("service metrics mutex poisoned");
    match &outcome {
        JobOutcome::Sorted { report, .. } => {
            m.counters.completed += 1;
            if report.spilled {
                m.counters.spilled += 1;
            }
            m.queue_waits.push(report.queue_wait_s);
            m.latencies.push(report.latency_s());
        }
        JobOutcome::Failed { .. } => m.counters.failed += 1,
        JobOutcome::Shed { .. } => unreachable!("shed handled before dispatch"),
    }
    drop(m);
    let _ = reply.send(outcome);
}

/// One rank's contribution to a job: its phase stats, plus its sorted
/// output when the job asked for data back.
type RankOutcome = Result<(SortStats, Option<Vec<u64>>), String>;

/// Fold per-rank results into one outcome.
fn assemble(
    id: u64,
    spec: &JobSpec,
    per_rank: Vec<RankOutcome>,
    records: u64,
    queue_wait_s: f64,
    sort_wall_s: f64,
    admit_pressure: f64,
) -> JobOutcome {
    let mut stats = Vec::with_capacity(per_rank.len());
    let mut outputs = Vec::with_capacity(per_rank.len());
    for r in per_rank {
        match r {
            Ok((s, o)) => {
                stats.push(s);
                if let Some(o) = o {
                    outputs.push(o);
                }
            }
            Err(error) => return JobOutcome::Failed { id, error },
        }
    }
    let maxima = phase_maxima(&stats);
    JobOutcome::Sorted {
        report: JobReport {
            id,
            workload: spec.workload.clone(),
            records,
            queue_wait_s,
            sort_wall_s,
            pivot_s: maxima.pivot_s,
            exchange_s: maxima.exchange_s,
            local_order_s: maxima.local_order_s,
            spilled: maxima.spilled,
            spill_records: stats.iter().map(|s| s.spill_records as u64).sum(),
            admit_pressure,
        },
        output: spec.return_output.then_some(outputs),
    }
}

/// One rank's share of a job, running on its persistent thread.
fn rank_job(
    comm: &ThreadComm,
    spec: &JobSpec,
    arena: &Arena,
    sort_cfg: &SdsConfig,
    spill: bool,
    spill_dir: &Path,
) -> RankOutcome {
    let mut buf = arena.take(comm.rank());
    // A generator error is deterministic in the workload name, so every
    // rank takes this early return together — nobody is left blocked in a
    // collective.
    if let Err(e) = workloads::fill_keys_by_name(
        &spec.workload,
        &mut buf,
        spec.records_per_rank,
        spec.seed,
        comm.rank(),
    ) {
        arena.put(comm.rank(), buf);
        return Err(e);
    }
    // Each job sorts on its own split context: fresh collective sequence
    // numbers, and any stray envelope from a failed job can never match.
    let sub = comm
        .split(Some(0), comm.rank() as i64)
        .expect("every rank passes the same color");
    let out = if spill {
        let mut rcfg = ResilienceConfig::new(spill_dir);
        // The threads backend reports zero simulated memory pressure, so
        // an impossible threshold is what forces every rank onto the
        // disk-spilling exchange.
        rcfg.pressure_threshold = -1.0;
        sds_sort_resilient(&sub, buf, sort_cfg, &rcfg)
    } else {
        sds_sort(&sub, buf, sort_cfg)
    };
    match out {
        Ok(o) => {
            let stats = o.stats;
            if spec.return_output {
                Ok((stats, Some(o.data)))
            } else {
                // Recycle the output buffer as a future input buffer.
                arena.put(comm.rank(), o.data);
                Ok((stats, None))
            }
        }
        Err(e) => Err(e.to_string()),
    }
}
