//! Service-level aggregates: counters, throughput, and latency quantiles.

/// Monotonic event counters for one service lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceCounters {
    /// Jobs accepted into the queue.
    pub submitted: u64,
    /// Jobs sorted successfully.
    pub completed: u64,
    /// Jobs refused by admission control.
    pub shed: u64,
    /// Jobs that failed.
    pub failed: u64,
    /// Completed jobs that degraded to the disk-spilling exchange.
    pub spilled: u64,
    /// `try_submit` calls rejected because the queue was full.
    pub queue_full: u64,
    /// Arena takes served from the pool.
    pub arena_hits: u64,
    /// Arena takes that allocated fresh.
    pub arena_misses: u64,
}

impl ServiceCounters {
    /// Every accepted job is accounted for: completed, shed, or failed.
    /// (`false` only transiently, while jobs are still in flight.)
    pub fn balanced(&self) -> bool {
        self.submitted == self.completed + self.shed + self.failed
    }
}

/// Final aggregate a [`crate::SortService::shutdown`] returns.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Event counters over the whole service lifetime.
    pub counters: ServiceCounters,
    /// Service lifetime in wall seconds.
    pub wall_s: f64,
    /// Completed jobs per wall second.
    pub jobs_per_sec: f64,
    /// Median queue wait (all non-failed jobs, shed included).
    pub queue_wait_p50_s: f64,
    /// 99th-percentile queue wait.
    pub queue_wait_p99_s: f64,
    /// Median end-to-end latency of completed jobs.
    pub latency_p50_s: f64,
    /// 99th-percentile end-to-end latency of completed jobs.
    pub latency_p99_s: f64,
}

/// Nearest-rank percentile (`q` in percent) over unsorted samples; 0.0 for
/// an empty slice.
pub fn percentile(samples: &mut [f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(f64::total_cmp);
    let rank = ((q / 100.0) * samples.len() as f64).ceil().max(1.0) as usize;
    samples[rank.min(samples.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        let mut s = [5.0, 1.0, 4.0, 2.0, 3.0];
        assert_eq!(percentile(&mut s, 50.0), 3.0);
        assert_eq!(percentile(&mut s, 99.0), 5.0);
        assert_eq!(percentile(&mut s, 0.0), 1.0);
        assert_eq!(percentile(&mut [], 50.0), 0.0);
        assert_eq!(percentile(&mut [7.5], 99.0), 7.5);
    }

    #[test]
    fn counters_balance() {
        let mut c = ServiceCounters {
            submitted: 5,
            completed: 3,
            shed: 1,
            failed: 1,
            ..ServiceCounters::default()
        };
        assert!(c.balanced());
        c.submitted = 6;
        assert!(!c.balanced());
    }
}
