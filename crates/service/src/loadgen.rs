//! Deterministic load generation: streams of jobs with Zipf-distributed
//! sizes.
//!
//! Real sort-service traffic is size-skewed: most requests are small,
//! a few are enormous. The generator reuses [`workloads::ZipfGen`] as the
//! *size* distribution — job `i` sorts `min_records_per_rank ×
//! sample(zipf)` records per rank — so the head of the distribution
//! produces minimum-size jobs and the tail occasionally produces jobs up
//! to `max_multiplier` times larger.

use crate::job::JobSpec;
use rand::prelude::*;
use workloads::ZipfGen;

/// A deterministic generator of [`JobSpec`]s with Zipf-distributed sizes.
#[derive(Debug, Clone)]
pub struct LoadGen {
    sizes: ZipfGen,
    min_records_per_rank: usize,
    workload: String,
    base_seed: u64,
}

impl LoadGen {
    /// Jobs of `workload` keys, at least `min_records_per_rank` records
    /// per rank each, with the default size skew (α = 1.1, up to 64× the
    /// minimum).
    pub fn new(workload: impl Into<String>, min_records_per_rank: usize, base_seed: u64) -> Self {
        Self {
            sizes: ZipfGen::new(1.1, 64),
            min_records_per_rank,
            workload: workload.into(),
            base_seed,
        }
    }

    /// Override the size distribution: Zipf exponent `alpha` over
    /// multipliers `1..=max_multiplier`.
    pub fn with_size_skew(mut self, alpha: f64, max_multiplier: usize) -> Self {
        self.sizes = ZipfGen::new(alpha, max_multiplier.max(1));
        self
    }

    /// The spec for job `job_index` — pure in `(self, job_index)`, so a
    /// load can be replayed exactly.
    pub fn spec(&self, job_index: u64) -> JobSpec {
        let mut rng =
            StdRng::seed_from_u64(self.base_seed ^ job_index.wrapping_mul(0xA076_1D64_78BD_642F));
        let multiplier = self.sizes.sample(&mut rng) as usize;
        JobSpec::new(
            self.workload.clone(),
            self.min_records_per_rank * multiplier,
            self.base_seed.wrapping_add(job_index),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_deterministic_and_head_heavy() {
        let lg = LoadGen::new("zipf:0.8", 1000, 7).with_size_skew(1.2, 32);
        let sizes: Vec<usize> = (0..500).map(|i| lg.spec(i).records_per_rank).collect();
        assert_eq!(
            sizes,
            (0..500)
                .map(|i| lg.spec(i).records_per_rank)
                .collect::<Vec<_>>(),
            "replay must be exact"
        );
        let min_jobs = sizes.iter().filter(|&&s| s == 1000).count();
        let large_jobs = sizes.iter().filter(|&&s| s >= 16_000).count();
        assert!(
            min_jobs > sizes.len() / 4,
            "head must dominate: {min_jobs} minimum-size of {}",
            sizes.len()
        );
        assert!(large_jobs > 0, "tail must appear");
        assert!(sizes.iter().all(|&s| (1000..=32_000).contains(&s)));
        // Seeds differ per job so equal-size jobs still sort distinct data.
        assert_ne!(lg.spec(0).seed, lg.spec(1).seed);
    }
}
