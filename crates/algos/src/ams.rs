//! Multi-level AMS-sort (Axtmann, Bingmann, Sanders, Schulz — *Practical
//! Massively Parallel Sorting*, SPAA'15).
//!
//! AMS-sort recursively partitions the ranks into `k` *groups*: each
//! level selects splitters from an **overpartitioned** bucket set (`o·k`
//! buckets for `k` groups), assigns consecutive buckets to groups so that
//! group loads track the ideal `1/k` share, and moves data with a
//! two-stage exchange:
//!
//! 1. **Delivery** — every rank sends bucket `b` to *one* deterministic
//!    member of `b`'s group (`group·g + rank mod g`), so the stage is a
//!    sparse all-to-all with `k` messages per rank instead of `p`.
//! 2. **Group rebalance** — within each group the delivered records are
//!    redistributed *by position* so every member holds an equal share
//!    before recursing. This is AMS-sort's balanced data delivery: no
//!    member of a group can be overloaded by an unlucky delivery pattern,
//!    whatever the bucket skew did to stage 1.
//!
//! The recursion then repeats inside each group until groups are single
//! ranks; the final balance is the overpartitioned assignment's
//! `(1+ε)`-style bound, with ε shrinking as [`AmsConfig::overpartition`]
//! grows. *Hierarchy awareness*: when the rank layout is node-block and
//! the node count permits, the first level uses one group per node, so
//! every level after the first exchanges intra-node only. On the input
//! side the `τm` node-merge machinery of `sdssort` is reused verbatim
//! ([`sdssort::node_merge`]): below the threshold, node data is merged
//! onto leaders first and AMS runs over the leader communicator.
//!
//! Like HykSort, bucketing is duplicate-blind (`classic_cuts`): all
//! duplicates of a splitter land in one bucket, so a single heavy key
//! still defeats the assignment — the skew-sweep shoot-out shows exactly
//! where. Splitter selection reuses `sdssort::sampling::regular_sample`
//! and `sdssort::pivots::reference_pivots`; merging reuses the loser-tree
//! `kway_merge_offsets`. Everything is deterministic (regular sampling,
//! synchronous rank-order exchanges, tie-to-lower-run merges), so output
//! is bit-identical across the sim/threads/sockets backends.

use crate::{charged, collective_alloc};
use comm::Communicator;
use sdssort::merge::kway_merge_offsets;
use sdssort::node_merge::node_merge;
use sdssort::partition::{classic_cuts, cuts_to_counts};
use sdssort::pivots::reference_pivots;
use sdssort::sampling::regular_sample;
use sdssort::stats::SortStats;
use sdssort::{ComputeCharge, SortError, SortOutput, Sortable};

/// AMS-sort configuration.
#[derive(Debug, Clone, Copy)]
pub struct AmsConfig {
    /// Maximum groups per level (fan-out). Small values force multiple
    /// levels; the SPAA'15 evaluation uses modest k per level.
    pub kmax: usize,
    /// Overpartitioning factor `o`: each level carves `o·k` buckets and
    /// assigns consecutive buckets to the `k` groups by load. Larger `o`
    /// tightens the group-balance bound at the cost of more splitters.
    pub overpartition: usize,
    /// Regular samples contributed per rank *per bucket* for splitter
    /// selection.
    pub oversample: usize,
    /// Node-merge threshold in bytes (τm, reusing the SDS-Sort decision
    /// rule): when the average exchange message is at or below this, node
    /// data is merged onto leaders before sorting. 0 keeps merging off for
    /// any non-empty input.
    pub tau_m_bytes: usize,
    /// Compute charging (see [`ComputeCharge`]).
    pub charge: ComputeCharge,
}

impl Default for AmsConfig {
    fn default() -> Self {
        Self {
            kmax: 8,
            overpartition: 2,
            oversample: 4,
            tau_m_bytes: 0,
            charge: ComputeCharge::Measured,
        }
    }
}

/// Largest divisor of `p` that is ≤ `kmax` and ≥ 2; `p` itself when `p`
/// is prime and exceeds `kmax` (single-level fallback, as in HykSort).
fn choose_k(p: usize, kmax: usize) -> usize {
    debug_assert!(p >= 2);
    let mut best = 1usize;
    let mut d = 2usize;
    while d * d <= p {
        if p.is_multiple_of(d) {
            if d <= kmax {
                best = best.max(d);
            }
            let q = p / d;
            if q <= kmax {
                best = best.max(q);
            }
        }
        d += 1;
    }
    if p <= kmax {
        best = best.max(p);
    }
    if best >= 2 {
        best
    } else {
        p
    }
}

/// Fan-out for one level. The first level prefers one group per node
/// (`k = p/c`) when the node count divides the rank count and fits
/// `kmax` — with a block rank layout this makes every later level
/// intra-node (the hierarchy-aware choice). Other levels, and layouts
/// where that does not apply, fall back to the largest divisor ≤ `kmax`.
fn choose_fanout<C: Communicator>(comm: &C, cfg: &AmsConfig, depth: u64) -> usize {
    let p = comm.size();
    let kmax = cfg.kmax.max(2);
    if depth == 0 {
        let c = comm.cores_per_node();
        if c > 1 && p.is_multiple_of(c) {
            let nodes = p / c;
            if nodes >= 2 && nodes <= kmax {
                return nodes;
            }
        }
    }
    choose_k(p, kmax)
}

/// Sort `data` across `comm` with multi-level AMS-sort. Unstable. Fails
/// collectively with [`SortError`] when any rank's receive buffer exceeds
/// the (simulated) memory budget.
pub fn ams_sort<T: Sortable, C: Communicator>(
    comm: &C,
    mut data: Vec<T>,
    cfg: &AmsConfig,
) -> Result<SortOutput<T>, SortError> {
    let t0 = comm.now();
    let mut stats = SortStats {
        input_count: data.len(),
        ..SortStats::default()
    };
    comm.trace_phase("local-sort");
    let n0 = data.len();
    charged(
        comm,
        cfg.charge,
        |m| m.sort_cost(n0),
        || data.sort_unstable_by_key(|r| r.key()),
    );
    stats.local_order_s += comm.now() - t0;
    let p = comm.size();
    if p == 1 {
        stats.recv_count = data.len();
        return Ok(SortOutput { data, stats });
    }

    // τm node merging on the input side, the SDS-Sort §2.3 machinery: the
    // decision is uniform (global average), merging gathers each node's
    // runs onto its leader, and AMS then runs over the leader communicator.
    let n_sum = comm.allreduce(data.len() as u64, |a, b| a + b);
    let n_avg = (n_sum / p as u64) as usize;
    let c = comm.cores_per_node();
    let avg_msg_bytes = n_avg / p * std::mem::size_of::<T>();
    if c > 1 && avg_msg_bytes <= cfg.tau_m_bytes {
        stats.node_merged = true;
        comm.trace_phase("node-merge");
        let t1 = comm.now();
        let (cg, cl) = comm.refine_comm();
        let node_n = cl.allreduce(data.len(), |a, b| a + b);
        let runs = cl.size();
        let merged = charged(
            comm,
            cfg.charge,
            |m| m.kway_merge_cost(node_n, runs),
            || node_merge(&cl, &data),
        );
        drop(data);
        stats.other_s += comm.now() - t1;
        return match (cg, merged) {
            (Some(cg), Some(merged)) => {
                let out = levels(&cg, merged, cfg, &mut stats, 0)?;
                stats.recv_count = out.len();
                Ok(SortOutput { data: out, stats })
            }
            (None, None) => {
                // Non-leader: its data now lives on the node leader.
                stats.recv_count = 0;
                Ok(SortOutput {
                    data: Vec::new(),
                    stats,
                })
            }
            _ => unreachable!("leader status must agree between cg and node_merge"),
        };
    }

    let out = levels(comm, data, cfg, &mut stats, 0)?;
    stats.recv_count = out.len();
    Ok(SortOutput { data: out, stats })
}

/// One recursion level: splitters → bucket assignment → two-stage exchange
/// → recurse within the group. `data` is locally sorted.
fn levels<T: Sortable, C: Communicator>(
    comm: &C,
    data: Vec<T>,
    cfg: &AmsConfig,
    stats: &mut SortStats,
    depth: u64,
) -> Result<Vec<T>, SortError> {
    let p = comm.size();
    if p == 1 {
        return Ok(data);
    }
    let k = choose_fanout(comm, cfg, depth);
    let g = p / k;

    // Splitter selection: pooled regular samples, overpartitioned buckets.
    comm.trace_phase("ams-pivot");
    let t0 = comm.now();
    let kb_want = k.saturating_mul(cfg.overpartition.max(1));
    let mine = regular_sample(&data, cfg.oversample.max(1).saturating_mul(kb_want));
    let (mut pooled, _) = comm.allgatherv(&mine);
    let pool_n = pooled.len();
    let splitters = charged(
        comm,
        cfg.charge,
        |m| m.sort_cost(pool_n),
        || reference_pivots(&mut pooled, kb_want),
    );
    // Tiny inputs can pool fewer samples than requested pivots; the bucket
    // count follows what we actually got (identical on every rank).
    let kb = splitters.len() + 1;
    let counts = cuts_to_counts(&classic_cuts(&data, &splitters));
    debug_assert_eq!(counts.len(), kb);

    // Global bucket loads → contiguous bucket-to-group assignment. Each
    // bucket goes to the group its load midpoint falls in on the ideal
    // cumulative curve (monotone, deterministic, replicated on all ranks).
    let loads: Vec<u64> = counts.iter().map(|&n| n as u64).collect();
    let global = comm.allreduce(loads, |a, b| a.iter().zip(&b).map(|(x, y)| x + y).collect());
    let total: u128 = global.iter().map(|&l| u128::from(l)).sum();
    let mut group_of = Vec::with_capacity(kb);
    let mut cum: u128 = 0;
    for (b, &load) in global.iter().enumerate() {
        let mid = cum + u128::from(load) / 2;
        let grp = match (mid * k as u128).checked_div(total) {
            None => b * k / kb,
            Some(q) => q.min(k as u128 - 1) as usize,
        };
        group_of.push(grp);
        cum += u128::from(load);
    }
    stats.pivot_s += comm.now() - t0;

    // Stage 1: deliver bucket b to member (rank mod g) of its group. The
    // destination sequence is non-decreasing in b, so sorted `data` is
    // already laid out in rank order for the exchange.
    comm.trace_phase("ams-deliver");
    let t1 = comm.now();
    let me = comm.rank();
    let mut send = vec![0usize; p];
    for (b, &cnt) in counts.iter().enumerate() {
        let dst = group_of[b]
            .checked_mul(g)
            .and_then(|base| base.checked_add(me % g))
            .expect("destination group*g + (me%g) < p, which fit in usize");
        send[dst] += cnt;
    }
    let recv = comm.alltoall(&send);
    let m: usize = recv.iter().sum();
    let bytes = m * std::mem::size_of::<T>();
    collective_alloc(comm, bytes)?;
    let buf = comm.alltoallv_given_counts(&data, &send, &recv);
    drop(data);
    let mut disp = Vec::with_capacity(p + 1);
    disp.push(0usize);
    for &r in &recv {
        disp.push(disp.last().copied().unwrap_or(0) + r);
    }
    let delivered = charged(
        comm,
        cfg.charge,
        |mo| mo.kway_merge_cost(m, p),
        || kway_merge_offsets(&buf, &disp),
    );
    drop(buf);
    comm.free(bytes);

    // Stage 2: exact positional rebalance within the group, then recurse.
    let group = me / g;
    let sub = comm
        .split(Some(group as i64), (me % g) as i64)
        .expect("every rank is in a group");
    let rebalanced = rebalance(&sub, delivered, cfg)?;
    stats.exchange_s += comm.now() - t1;
    levels(&sub, rebalanced, cfg, stats, depth + 1)
}

/// Redistribute the group's records so member `r` holds exactly the
/// `[r·M/g, (r+1)·M/g)` slice of the group's concatenated (locally
/// sorted) data — AMS-sort's balanced delivery guarantee. Order across
/// members is positional, not by key: the next level re-partitions by key
/// anyway, and each member's slice set is re-merged locally.
fn rebalance<T: Sortable, C: Communicator>(
    sub: &C,
    mine: Vec<T>,
    cfg: &AmsConfig,
) -> Result<Vec<T>, SortError> {
    let gsz = sub.size();
    if gsz == 1 {
        return Ok(mine);
    }
    let n = mine.len() as u64;
    let total = sub.allreduce(n, |a, b| a + b);
    let before = sub.exscan(n, |a, b| a + b).unwrap_or(0);
    let mut send = vec![0usize; gsz];
    for (r, s) in send.iter_mut().enumerate() {
        let lo = (r as u128 * u128::from(total) / gsz as u128) as u64;
        let hi = ((r + 1) as u128 * u128::from(total) / gsz as u128) as u64;
        let a = lo.max(before);
        let b = hi.min(before + n);
        *s = b.saturating_sub(a) as usize;
    }
    let recv = sub.alltoall(&send);
    let m: usize = recv.iter().sum();
    let bytes = m * std::mem::size_of::<T>();
    collective_alloc(sub, bytes)?;
    let buf = sub.alltoallv_given_counts(&mine, &send, &recv);
    drop(mine);
    let mut disp = Vec::with_capacity(gsz + 1);
    disp.push(0usize);
    for &r in &recv {
        disp.push(disp.last().copied().unwrap_or(0) + r);
    }
    let out = charged(
        sub,
        cfg.charge,
        |mo| mo.kway_merge_cost(m, gsz),
        || kway_merge_offsets(&buf, &disp),
    );
    drop(buf);
    sub.free(bytes);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn choose_k_prefers_largest_divisor() {
        assert_eq!(choose_k(16, 8), 8);
        assert_eq!(choose_k(12, 5), 4);
        assert_eq!(choose_k(9, 3), 3);
        assert_eq!(choose_k(7, 4), 7); // prime above kmax: single level
        assert_eq!(choose_k(2, 8), 2);
    }
}
