//! Histogram Sort with Sampling (Harsh, Kale, Solomonik — SPAA'19).
//!
//! HSS is a single-stage partitioning sort whose splitter selection
//! carries a provable quality guarantee: iterative histogramming refines
//! a sampled candidate set until every part of the partition is within
//! `(1+ε)` of the ideal `N/p`, using far fewer samples than one-shot
//! sample sort needs for the same bound.
//!
//! Two things distinguish this implementation from the HykSort-style
//! histogramming already in `sdssort::histogram`:
//!
//! 1. **Boundaries are positions, not key values.** A cut is an
//!    [`HssCut`]: a key plus a *tie split* — how many duplicates of that
//!    key (counted in global rank order) fall left of the boundary. A
//!    candidate key `c` with global `lower/upper`-bound ranks `l(c)` and
//!    `u(c)` can therefore realize **any** boundary position in
//!    `[l(c), u(c)]` exactly. Duplicate mass, which defeats value-only
//!    splitters (one key heavier than `(1+ε)·N/p` makes the HykSort
//!    guarantee unachievable — §2.4 of the SDS-Sort paper), instead makes
//!    a candidate *more* useful here: the heavier the key, the wider the
//!    interval of positions it can hit. This mirrors how SDS-Sort's
//!    skew-aware partition splits replicated runs, applied to HSS's
//!    histogram refinement.
//! 2. **A deterministic exact fallback.** If a target position is still
//!    outside tolerance after `max_rounds` (degenerate sampling luck),
//!    the exact boundary key is found with
//!    [`sdssort::selection::kth_smallest_key`] — so the `(1+ε)` bound is
//!    a postcondition, not a hope. The splitter-quality suite asserts it
//!    across the whole skew matrix.
//!
//! Sampling is seeded xorshift (per rank), histogramming is one
//! `allreduce` per round, the exchange is a synchronous rank-order
//! `alltoallv`, ties split by global rank order, and the final merge
//! breaks ties toward lower source ranks: output is bit-identical across
//! the sim/threads/sockets backends.

use crate::{charged, collective_alloc};
use comm::Communicator;
use sdssort::merge::kway_merge_offsets;
use sdssort::search::{lower_bound, upper_bound};
use sdssort::selection::kth_smallest_key;
use sdssort::stats::SortStats;
use sdssort::{ComputeCharge, SortError, SortOutput, Sortable};

/// HSS configuration.
#[derive(Debug, Clone, Copy)]
pub struct HssConfig {
    /// Part-size guarantee: every part of the final partition is at most
    /// `(1+ε)` times the ideal `N/p` (plus integer rounding).
    pub eps: f64,
    /// Candidate keys sampled per rank per histogram round.
    pub samples_per_round: usize,
    /// Histogram refinement rounds before the exact-selection fallback.
    pub max_rounds: usize,
    /// Compute charging (see [`ComputeCharge`]).
    pub charge: ComputeCharge,
    /// Seed for candidate sampling.
    pub seed: u64,
}

impl Default for HssConfig {
    fn default() -> Self {
        Self {
            eps: 0.1,
            samples_per_round: 24,
            max_rounds: 12,
            charge: ComputeCharge::Measured,
            seed: 0x4855_5353, // "HSS"
        }
    }
}

/// One partition boundary: records with key `< key` fall left, plus the
/// first `take_equal` duplicates of `key` in global rank order. `position`
/// is the realized global rank of the boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HssCut<K> {
    /// Boundary key.
    pub key: K,
    /// Duplicates of `key` (global rank order) that fall left.
    pub take_equal: u64,
    /// Realized global boundary position, `lower(key) + take_equal`.
    pub position: u64,
}

/// xorshift64* — deterministic candidate sampling without an RNG crate
/// dependency (same generator as `sdssort::histogram`).
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Best candidate so far for one target: key, its global `[lower, upper]`
/// rank interval, and its distance to the target (0 when the target lies
/// inside the interval).
#[derive(Clone, Copy)]
struct Best<K> {
    key: K,
    lo: u64,
    hi: u64,
    err: u64,
}

fn interval_err(lo: u64, hi: u64, target: u64) -> u64 {
    if target < lo {
        lo - target
    } else {
        target.saturating_sub(hi)
    }
}

/// Select the `parts-1` partition boundaries over the distributed, locally
/// sorted `data` by iterative histogramming with tie-splitting. Returns
/// identical cuts on every rank, with every realized `position` within
/// `⌊ε·(N/parts)/2⌋` of its ideal target — by refinement when sampling
/// converges, by exact selection when it does not.
pub fn hss_splitters<T: Sortable, C: Communicator>(
    comm: &C,
    data: &[T],
    parts: usize,
    cfg: &HssConfig,
) -> Vec<HssCut<T::Key>> {
    debug_assert!(sdssort::merge::is_sorted_by_key(data));
    let total = comm.allreduce(data.len() as u64, |a, b| a + b);
    let want = parts.saturating_sub(1);
    if want == 0 || total == 0 {
        return Vec::new();
    }
    let targets: Vec<u64> = (1..parts)
        .map(|i| i as u64 * total / parts as u64)
        .collect();
    let ideal = total as f64 / parts as f64;
    let tol = (cfg.eps.max(0.0) * ideal / 2.0).floor() as u64;

    let mut best: Vec<Option<Best<T::Key>>> = vec![None; want];
    let mut rng = (cfg.seed ^ 0x4157_0002 ^ ((comm.rank() as u64) << 17)) | 1;

    for round in 0..cfg.max_rounds {
        // Sample candidates from local data (plus the extremes on the
        // first round so every rank contributes structure).
        let mut mine: Vec<T::Key> = Vec::with_capacity(cfg.samples_per_round + 2);
        if !data.is_empty() {
            for _ in 0..cfg.samples_per_round {
                let idx = (xorshift(&mut rng) % data.len() as u64) as usize;
                mine.push(data[idx].key());
            }
            if round == 0 {
                mine.push(data[0].key());
                mine.push(data[data.len() - 1].key());
            }
        }
        let (mut candidates, _) = comm.allgatherv(&mine);
        candidates.sort_unstable();
        candidates.dedup();
        if candidates.is_empty() {
            break;
        }
        // One reduction gives every candidate's global [lower, upper]
        // rank interval: the positions a tie-split at it can realize.
        let local: Vec<u64> = candidates
            .iter()
            .flat_map(|&c| [lower_bound(data, c) as u64, upper_bound(data, c) as u64])
            .collect();
        let global = comm.allreduce(local, |a, b| a.iter().zip(&b).map(|(x, y)| x + y).collect());
        for (t, &target) in targets.iter().enumerate() {
            for (c, &cand) in candidates.iter().enumerate() {
                let (lo, hi) = (global[2 * c], global[2 * c + 1]);
                let err = interval_err(lo, hi, target);
                let better = match &best[t] {
                    None => true,
                    Some(b) => err < b.err,
                };
                if better {
                    best[t] = Some(Best {
                        key: cand,
                        lo,
                        hi,
                        err,
                    });
                }
            }
        }
        if best.iter().all(|b| matches!(b, Some(b) if b.err <= tol)) {
            break;
        }
    }

    // Deterministic exact fallback for any still-unmet target: select the
    // exact boundary key, then rank it with one more reduction.
    for (t, &target) in targets.iter().enumerate() {
        let met = matches!(&best[t], Some(b) if b.err <= tol);
        let any_unmet = comm.allreduce(u8::from(!met), |a, b| a.max(b)) > 0;
        if !any_unmet {
            continue;
        }
        // (The decision above is an allreduce over replicated state, so
        // every rank takes this branch together.)
        let key = kth_smallest_key(comm, data, target);
        let local = [lower_bound(data, key) as u64, upper_bound(data, key) as u64];
        let global = comm.allreduce(local.to_vec(), |a, b| {
            a.iter().zip(&b).map(|(x, y)| x + y).collect()
        });
        best[t] = Some(Best {
            key,
            lo: global[0],
            hi: global[1],
            err: 0,
        });
    }

    // Realize each boundary as close to its target as the chosen key
    // allows, then enforce monotone positions (replicated computation:
    // identical fix-ups everywhere).
    let mut cuts: Vec<HssCut<T::Key>> = Vec::with_capacity(want);
    let mut prev_pos = 0u64;
    for (t, &target) in targets.iter().enumerate() {
        let b = best[t].expect("every target was ranked (fallback is exact)");
        let pos = target.clamp(b.lo, b.hi).max(prev_pos);
        let take = pos.saturating_sub(b.lo).min(b.hi.saturating_sub(b.lo));
        let cut = HssCut {
            key: b.key,
            take_equal: take,
            position: b.lo + take,
        };
        if let Some(last) = cuts.last().copied() {
            if cut.position < last.position {
                cuts.push(last);
                prev_pos = last.position;
                continue;
            }
        }
        prev_pos = cut.position;
        cuts.push(cut);
    }
    cuts
}

/// This rank's local cut indices for the replicated `cuts`: for each
/// boundary, local records below the key plus this rank's share of the
/// tie split (duplicates are taken from ranks in ascending rank order).
/// Returns `cuts.len()` indices into the locally sorted `data`.
fn local_cuts<T: Sortable, C: Communicator>(
    comm: &C,
    data: &[T],
    cuts: &[HssCut<T::Key>],
) -> Vec<usize> {
    if cuts.is_empty() {
        return Vec::new();
    }
    // Global exscan of per-boundary equal-run lengths gives each rank its
    // offset into the tie split.
    let equals: Vec<u64> = cuts
        .iter()
        .map(|c| (upper_bound(data, c.key) - lower_bound(data, c.key)) as u64)
        .collect();
    let offsets = comm
        .exscan(equals.clone(), |a, b| {
            a.iter().zip(&b).map(|(x, y)| x + y).collect()
        })
        .unwrap_or_else(|| vec![0; cuts.len()]);
    let mut out = Vec::with_capacity(cuts.len());
    let mut prev = 0usize;
    for (i, cut) in cuts.iter().enumerate() {
        let below = lower_bound(data, cut.key);
        let my_take = cut.take_equal.saturating_sub(offsets[i]).min(equals[i]) as usize;
        let idx = below
            .checked_add(my_take)
            .expect("cut index below + my_take <= data.len()")
            .max(prev);
        debug_assert!(idx <= data.len());
        out.push(idx);
        prev = idx;
    }
    out
}

/// Sort `data` across `comm` with Histogram Sort with Sampling. Unstable
/// between ranks only in the sense of sample sort: equal keys are ordered
/// by source rank (the tie split is by global rank order), and the merge
/// breaks ties toward lower sources, so the output is deterministic.
/// Fails collectively with [`SortError`] when any rank's receive buffer
/// exceeds the (simulated) memory budget.
pub fn hss_sort<T: Sortable, C: Communicator>(
    comm: &C,
    mut data: Vec<T>,
    cfg: &HssConfig,
) -> Result<SortOutput<T>, SortError> {
    let t0 = comm.now();
    let mut stats = SortStats {
        input_count: data.len(),
        ..SortStats::default()
    };
    comm.trace_phase("local-sort");
    let n0 = data.len();
    charged(
        comm,
        cfg.charge,
        |m| m.sort_cost(n0),
        || data.sort_unstable_by_key(|r| r.key()),
    );
    stats.local_order_s += comm.now() - t0;
    let p = comm.size();
    if p == 1 {
        stats.recv_count = data.len();
        return Ok(SortOutput { data, stats });
    }

    comm.trace_phase("hss-pivot");
    let t1 = comm.now();
    let cuts = hss_splitters(comm, &data, p, cfg);
    let idx = local_cuts(comm, &data, &cuts);
    stats.pivot_s += comm.now() - t1;

    comm.trace_phase("hss-exchange");
    let t2 = comm.now();
    let mut send = Vec::with_capacity(p);
    let mut prev = 0usize;
    for &i in &idx {
        send.push(i - prev);
        prev = i;
    }
    send.push(data.len() - prev);
    // Degenerate inputs can yield fewer cuts than p-1 boundaries; the
    // remaining ranks receive nothing.
    send.resize(p, 0);
    let recv = comm.alltoall(&send);
    let m: usize = recv.iter().sum();
    let bytes = m * std::mem::size_of::<T>();
    collective_alloc(comm, bytes)?;
    let buf = comm.alltoallv_given_counts(&data, &send, &recv);
    drop(data);
    stats.exchange_s += comm.now() - t2;

    let t3 = comm.now();
    let mut disp = Vec::with_capacity(p + 1);
    disp.push(0usize);
    for &r in &recv {
        disp.push(disp.last().copied().unwrap_or(0) + r);
    }
    let out = charged(
        comm,
        cfg.charge,
        |mo| mo.kway_merge_cost(m, p),
        || kway_merge_offsets(&buf, &disp),
    );
    drop(buf);
    comm.free(bytes);
    stats.local_order_s += comm.now() - t3;
    stats.recv_count = out.len();
    Ok(SortOutput { data: out, stats })
}
