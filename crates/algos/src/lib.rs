//! # algos — peer distributed sorting algorithms over [`comm::Communicator`]
//!
//! SDS-Sort's claim is that *dynamic skew-awareness* beats fixed-strategy
//! distributed sorts. To test that claim against the strongest modern
//! competitors — not just HykSort and single-level sample sort — this
//! crate implements two published algorithms as peers of `sdssort`,
//! generic over the [`comm::Communicator`] transport so all three
//! backends (virtual-time simulator, OS threads, OS processes over
//! sockets), the happens-before checker, fault injection, memory budgets,
//! and telemetry come for free:
//!
//! * [`ams_sort`] — **multi-level AMS-sort** (Axtmann, Bingmann, Sanders,
//!   Schulz — *Practical Massively Parallel Sorting*, SPAA'15): recursive
//!   `k`-way partitioning with overpartitioned splitters and a two-stage,
//!   hierarchy-aware data exchange (deliver buckets to rank *groups*,
//!   then rebalance exactly within each group). The first level aligns
//!   groups with nodes when the layout allows, and the `τm` node-merge
//!   machinery from `sdssort` is reused verbatim on the input side.
//! * [`hss_sort`] — **Histogram Sort with Sampling** (Harsh, Kale,
//!   Solomonik — SPAA'19): single-stage partitioning whose splitters are
//!   refined by iterative histogramming until every part is provably
//!   within `(1+ε)` of the ideal `N/p` — including under arbitrary
//!   duplication, because boundaries may *split ties* at a key by global
//!   rank order (where HykSort's value-only splitters famously cannot).
//!
//! Both sorters are deterministic end to end — seeded sampling, synchronous
//! rank-order exchanges, tie-to-lower-run merging — so the
//! `backend_equivalence` suite proves bit-identical per-rank output across
//! all three backends, exactly as it does for `sds_sort`.
//!
//! Divergence from SDS-Sort's partition strategy is discussed in
//! DESIGN.md §14.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ams;
pub mod hss;

pub use ams::{ams_sort, AmsConfig};
pub use hss::{hss_sort, hss_splitters, HssConfig, HssCut};

use comm::Communicator;
use sdssort::{ComputeCharge, ComputeModel};

/// Run `f`, charging its cost per the configured [`ComputeCharge`]:
/// measured wall time via `comm.compute` or the calibrated model via
/// `comm.charge_compute` (the same convention as `sdssort::sort`).
pub(crate) fn charged<R, C: Communicator>(
    comm: &C,
    charge: ComputeCharge,
    cost: impl FnOnce(&ComputeModel) -> f64,
    f: impl FnOnce() -> R,
) -> R {
    match charge {
        ComputeCharge::Measured => comm.compute(f),
        ComputeCharge::Modeled(m) => {
            let r = f();
            comm.charge_compute(cost(&m));
            r
        }
    }
}

/// Collectively check that every rank can allocate its receive buffer.
/// Returns the error for the exchange to abort with, or charges `bytes`
/// against the budget on every rank. The check is collective so all ranks
/// agree to fail (the simulator's OOM semantics; see `baselines::hyksort`).
pub(crate) fn collective_alloc<C: Communicator>(
    comm: &C,
    bytes: usize,
) -> Result<(), sdssort::SortError> {
    let my_alloc = comm.try_alloc(bytes);
    let any_oom = comm.allreduce(u8::from(my_alloc.is_err()), |a, b| a.max(b)) > 0;
    if any_oom {
        if my_alloc.is_ok() {
            comm.free(bytes);
        }
        return Err(match my_alloc {
            Err(e) => sdssort::SortError::Oom(e),
            Ok(()) => sdssort::SortError::PeerOom,
        });
    }
    Ok(())
}
