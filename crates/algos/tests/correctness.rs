//! Correctness suite for the peer algorithms on the virtual-time
//! simulator: global sortedness, permutation (no record lost or
//! invented), multi-level recursion, the `τm` node-merge path, the HSS
//! `(1+ε)` part-size guarantee across the skew matrix, and collective
//! OOM behavior. Cross-backend bit-equality lives in the workspace-level
//! `backend_equivalence` suite.

use algos::{ams_sort, hss_sort, hss_splitters, AmsConfig, HssConfig};
use mpisim::{NetModel, World};
use workloads::keys_by_name;

fn world(p: usize) -> World {
    World::new(p).cores_per_node(4).net(NetModel::zero())
}

/// The skew matrix: uniform, moderate and heavy Zipf, the staircase of
/// duplication levels, heavy hitters, and a single repeated key.
const WORKLOADS: [&str; 6] = [
    "uniform",
    "zipf:1.05",
    "zipf:1.8",
    "staircase:4",
    "adversarial",
    "identical",
];

fn keys(name: &str, n: usize, seed: u64, rank: usize) -> Vec<u64> {
    if name == "identical" {
        return workloads::all_equal(n, 42);
    }
    keys_by_name(name, n, seed, rank).expect("workload name from the fixed matrix")
}

/// Assert the per-rank outputs, concatenated in rank order, are globally
/// sorted and a permutation of the inputs.
fn assert_sorted_permutation(inputs: &[Vec<u64>], outputs: &[Vec<u64>]) {
    let flat: Vec<u64> = outputs.iter().flatten().copied().collect();
    assert!(flat.windows(2).all(|w| w[0] <= w[1]), "globally sorted");
    let mut expect: Vec<u64> = inputs.iter().flatten().copied().collect();
    expect.sort_unstable();
    assert_eq!(flat, expect, "permutation of the input");
}

#[test]
fn ams_sorts_the_skew_matrix() {
    let p = 8;
    for name in WORKLOADS {
        let report = world(p).run(move |comm| {
            let data = keys(name, 600, 11, comm.rank());
            let out = ams_sort(comm, data.clone(), &AmsConfig::default()).expect("no budget set");
            (data, out.data)
        });
        let (ins, outs): (Vec<_>, Vec<_>) = report.results.into_iter().unzip();
        assert_sorted_permutation(&ins, &outs);
    }
}

#[test]
fn ams_recurses_multi_level() {
    // kmax=2 at p=8 forces three levels of 2-way splits; the result must
    // still be exact.
    let p = 8;
    let mut cfg = AmsConfig::default();
    cfg.kmax = 2;
    let report = world(p).run(move |comm| {
        let data = keys("zipf:1.3", 500, 23, comm.rank());
        let out = ams_sort(comm, data.clone(), &cfg).expect("no budget set");
        (data, out.data)
    });
    let (ins, outs): (Vec<_>, Vec<_>) = report.results.into_iter().unzip();
    assert_sorted_permutation(&ins, &outs);
}

#[test]
fn ams_node_merge_path_engages_and_stays_correct() {
    // A huge τm forces the node-merge prelude: node-local ranks gather to
    // their leader, and only leaders run the multi-level exchange.
    let p = 8;
    let mut cfg = AmsConfig::default();
    cfg.tau_m_bytes = usize::MAX;
    let report = world(p).run(move |comm| {
        let data = keys("staircase:4", 300, 7, comm.rank());
        let out = ams_sort(comm, data.clone(), &cfg).expect("no budget set");
        (data, out.data, out.stats.node_merged)
    });
    let merged = report.results.iter().any(|(_, _, m)| *m);
    assert!(merged, "tau_m = MAX must engage the node merge");
    let (ins, outs): (Vec<_>, Vec<_>) = report.results.into_iter().map(|(i, o, _)| (i, o)).unzip();
    assert_sorted_permutation(&ins, &outs);
}

#[test]
fn ams_deterministic_across_runs() {
    let p = 8;
    let run = || {
        world(p)
            .run(|comm| {
                let data = keys("zipf:1.5", 400, 3, comm.rank());
                ams_sort(comm, data, &AmsConfig::default())
                    .expect("no budget set")
                    .data
            })
            .results
    };
    assert_eq!(run(), run(), "bit-identical per-rank outputs");
}

#[test]
fn ams_tiny_and_empty_inputs() {
    let p = 8;
    for n in [0usize, 1, 3] {
        let report = world(p).run(move |comm| {
            let data = keys("uniform", n, 2, comm.rank());
            let out = ams_sort(comm, data.clone(), &AmsConfig::default()).expect("no budget set");
            (data, out.data)
        });
        let (ins, outs): (Vec<_>, Vec<_>) = report.results.into_iter().unzip();
        assert_sorted_permutation(&ins, &outs);
    }
}

#[test]
fn hss_sorts_the_skew_matrix() {
    let p = 8;
    for name in WORKLOADS {
        let report = world(p).run(move |comm| {
            let data = keys(name, 600, 17, comm.rank());
            let out = hss_sort(comm, data.clone(), &HssConfig::default()).expect("no budget set");
            (data, out.data)
        });
        let (ins, outs): (Vec<_>, Vec<_>) = report.results.into_iter().unzip();
        assert_sorted_permutation(&ins, &outs);
    }
}

#[test]
fn hss_part_sizes_within_one_plus_eps() {
    // The headline HSS guarantee: every part of the final partition is at
    // most (1+ε)·(N/p) — *including* under total duplication, where
    // value-only splitters cannot achieve any bound at all. `recv_count`
    // is exactly the realized part size. The +2 absorbs the integer
    // rounding of targets (⌊iN/p⌋) and of the tolerance.
    let p = 8;
    let n = 600usize;
    let eps = 0.1;
    for name in WORKLOADS {
        let mut cfg = HssConfig::default();
        cfg.eps = eps;
        let report = world(p).run(move |comm| {
            let data = keys(name, n, 29, comm.rank());
            hss_sort(comm, data, &cfg)
                .expect("no budget set")
                .stats
                .recv_count
        });
        let total: usize = n * p;
        let ideal = total as f64 / p as f64;
        let bound = ((1.0 + eps) * ideal).floor() as usize + 2;
        for (rank, &part) in report.results.iter().enumerate() {
            assert!(
                part <= bound,
                "{name}: part on rank {rank} is {part} > (1+eps)*ideal bound {bound}"
            );
        }
    }
}

#[test]
fn hss_splitters_hit_targets_within_tolerance() {
    // Stronger than the part-size bound: every realized boundary position
    // is within tol = ⌊ε·ideal/2⌋ of its ideal target ⌊iN/p⌋, whether by
    // histogram refinement or by the exact-selection fallback.
    let p = 8;
    let n = 600usize;
    let eps = 0.1;
    for name in WORKLOADS {
        let mut cfg = HssConfig::default();
        cfg.eps = eps;
        let report = world(p).run(move |comm| {
            let data = {
                let mut d = keys(name, n, 31, comm.rank());
                d.sort_unstable();
                d
            };
            hss_splitters(comm, &data, comm.size(), &cfg)
        });
        let total = (n * p) as u64;
        let ideal = total as f64 / p as f64;
        let tol = (eps * ideal / 2.0).floor() as u64;
        let first = &report.results[0];
        assert_eq!(first.len(), p - 1, "{name}: one cut per boundary");
        for cuts in &report.results {
            assert_eq!(cuts, first, "{name}: cuts replicated on every rank");
        }
        for (i, cut) in first.iter().enumerate() {
            let target = (i as u64 + 1) * total / p as u64;
            let err = cut.position.abs_diff(target);
            assert!(
                err <= tol,
                "{name}: boundary {i} realized {} vs target {target} (err {err} > tol {tol})",
                cut.position
            );
        }
    }
}

#[test]
fn hss_forced_fallback_is_exact() {
    // Zero histogram rounds: every boundary must come from the exact
    // kth_smallest_key fallback, so positions hit targets with err 0.
    let p = 8;
    let n = 500usize;
    let mut cfg = HssConfig::default();
    cfg.max_rounds = 0;
    let report = world(p).run(move |comm| {
        let data = {
            let mut d = keys("zipf:1.8", n, 41, comm.rank());
            d.sort_unstable();
            d
        };
        hss_splitters(comm, &data, comm.size(), &cfg)
    });
    let total = (n * p) as u64;
    for cuts in &report.results {
        for (i, cut) in cuts.iter().enumerate() {
            let target = (i as u64 + 1) * total / p as u64;
            assert_eq!(cut.position, target, "boundary {i} exact under fallback");
        }
    }
}

#[test]
fn hss_deterministic_across_runs() {
    let p = 8;
    let run = || {
        world(p)
            .run(|comm| {
                let data = keys("adversarial", 400, 5, comm.rank());
                hss_sort(comm, data, &HssConfig::default())
                    .expect("no budget set")
                    .data
            })
            .results
    };
    assert_eq!(run(), run(), "bit-identical per-rank outputs");
}

#[test]
fn hss_tiny_and_empty_inputs() {
    let p = 8;
    for n in [0usize, 1, 3] {
        let report = world(p).run(move |comm| {
            let data = keys("uniform", n, 2, comm.rank());
            let out = hss_sort(comm, data.clone(), &HssConfig::default()).expect("no budget set");
            (data, out.data)
        });
        let (ins, outs): (Vec<_>, Vec<_>) = report.results.into_iter().unzip();
        assert_sorted_permutation(&ins, &outs);
    }
}

#[test]
fn both_fail_collectively_under_memory_pressure() {
    // A budget far below the receive volume must fail on every rank —
    // either locally (Oom) or in sympathy (PeerOom) — never deadlock or
    // succeed partially.
    let p = 4;
    for algo in ["ams", "hss"] {
        let report = World::new(p)
            .cores_per_node(2)
            .net(NetModel::zero())
            .memory_budget(64)
            .run(move |comm| {
                let data = keys("uniform", 1000, 9, comm.rank());
                match algo {
                    "ams" => ams_sort(comm, data, &AmsConfig::default()).map(|o| o.data),
                    _ => hss_sort(comm, data, &HssConfig::default()).map(|o| o.data),
                }
            });
        for (rank, r) in report.results.iter().enumerate() {
            assert!(r.is_err(), "{algo}: rank {rank} must report the OOM");
        }
    }
}
